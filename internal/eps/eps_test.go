package eps

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"tara/internal/itemset"
	"tara/internal/rules"
)

// fixedSlice builds the running example of Table 1 / Figure 5 of the paper:
// window T2 with rules R1..R6 at their published (supp, conf) locations.
func fixedSlice(t *testing.T, opts Options) (*Slice, *rules.Dict) {
	t.Helper()
	d := rules.NewDict()
	// Items: a=0 b=1 c=2. N = 9 transactions; counts chosen to reproduce
	// the paper's supports and confidences exactly where possible.
	mk := func(ant, cons itemset.Set, countXY, countX uint32) IDStats {
		id := d.Add(rules.Rule{Ant: ant, Cons: cons})
		return IDStats{ID: id, Stats: rules.Stats{CountXY: countXY, CountX: countX, N: 9}}
	}
	rs := []IDStats{
		mk(itemset.New(0), itemset.New(1), 1, 4), // R1: a->b (0.11, 0.25)
		mk(itemset.New(1), itemset.New(0), 1, 2), // R2: b->a (0.11, 0.5)
		mk(itemset.New(0), itemset.New(2), 3, 4), // R3: a->c (0.33, 0.75)
		mk(itemset.New(2), itemset.New(0), 3, 4), // R4: c->a (0.33, 0.75)
		mk(itemset.New(2), itemset.New(1), 1, 4), // R5: c->b (0.11, 0.25)
		mk(itemset.New(1), itemset.New(2), 1, 2), // R6: b->c (0.11, 0.5)
	}
	if opts.ContentIndex {
		opts.Dict = d
	}
	s, err := BuildSlice(2, 9, rs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, d
}

func TestBuildSliceGroupsLocations(t *testing.T) {
	s, _ := fixedSlice(t, Options{})
	// Locations: (0.11,0.25)x{R1,R5}, (0.11,0.5)x{R2,R6}, (0.33,0.75)x{R3,R4}.
	if got := s.NumLocations(); got != 3 {
		t.Fatalf("NumLocations = %d, want 3", got)
	}
	if got := s.NumRuleRefs(); got != 6 {
		t.Fatalf("NumRuleRefs = %d, want 6 (each rule stored once)", got)
	}
}

func TestSliceRulesQuadrant(t *testing.T) {
	s, _ := fixedSlice(t, Options{})
	cases := []struct {
		supp, conf float64
		want       int
	}{
		{0, 0, 6},
		{0.2, 0, 2},     // only R3, R4
		{0, 0.4, 4},     // R2, R6, R3, R4
		{0.2, 0.6, 2},   // R3, R4
		{0.5, 0, 0},     // nothing that frequent
		{0, 0.8, 0},     // nothing that confident
		{0.33, 0.75, 2}, // exactly at the top location
	}
	for _, c := range cases {
		got := s.Rules(c.supp, c.conf)
		if len(got) != c.want {
			t.Errorf("Rules(%g, %g) = %v (%d), want %d", c.supp, c.conf, got, len(got), c.want)
		}
		if n := s.Count(c.supp, c.conf); n != len(got) {
			t.Errorf("Count(%g,%g) = %d != len(Rules) %d", c.supp, c.conf, n, len(got))
		}
	}
}

func TestSliceRegionPaperExample(t *testing.T) {
	s, _ := fixedSlice(t, Options{})
	// A request inside the paper's S3-like region: between the two lower
	// locations and the top one. Output must be {R3, R4} anywhere inside.
	r := s.Region(0.2, 0.6)
	if r.Empty {
		t.Fatal("region unexpectedly empty")
	}
	if r.NumRules != 2 {
		t.Errorf("NumRules = %d, want 2", r.NumRules)
	}
	if r.CutSupp != 3.0/9 || r.CutConf != 0.75 {
		t.Errorf("cut = (%g, %g), want (%g, 0.75)", r.CutSupp, r.CutConf, 3.0/9)
	}
	// Maximal region: with minconf held above 0.5 the low-support locations
	// (conf 0.25 and 0.5) can never qualify, so the support bound extends
	// all the way to 0; confidence is pinned by the 0.5-conf locations.
	if r.LowSupp != 0 || r.HighSupp != 3.0/9 {
		t.Errorf("supp bounds (%g, %g], want (0, %g]", r.LowSupp, r.HighSupp, 3.0/9)
	}
	if r.LowConf != 0.5 || r.HighConf != 0.75 {
		t.Errorf("conf bounds (%g, %g], want (0.5, 0.75]", r.LowConf, r.HighConf)
	}
}

func TestSliceRegionEmpty(t *testing.T) {
	s, _ := fixedSlice(t, Options{})
	r := s.Region(0.9, 0.9)
	if !r.Empty {
		t.Fatal("expected empty region above all locations")
	}
	if r.NumRules != 0 {
		t.Errorf("NumRules = %d", r.NumRules)
	}
}

func TestSliceRegionInvariance(t *testing.T) {
	s, _ := fixedSlice(t, Options{})
	r := s.Region(0.2, 0.6)
	base := s.Rules(0.2, 0.6)
	// Sample points strictly inside the region: identical ruleset.
	for _, supp := range []float64{r.LowSupp + 1e-9, (r.LowSupp + r.HighSupp) / 2, r.HighSupp} {
		for _, conf := range []float64{r.LowConf + 1e-9, (r.LowConf + r.HighConf) / 2, r.HighConf} {
			got := s.Rules(supp, conf)
			if len(got) != len(base) {
				t.Errorf("ruleset changed inside region at (%g, %g): %d vs %d", supp, conf, len(got), len(base))
			}
		}
	}
	// Crossing a bound changes the set: dropping minconf to LowConf (0.5)
	// admits the conf-0.5 locations; pushing minsupp above HighSupp drops
	// the cut location's rules.
	if got := s.Rules(r.LowSupp+1e-9, r.LowConf); len(got) == len(base) {
		t.Error("ruleset unchanged at LowConf boundary")
	}
	if got := s.Rules(r.HighSupp+1e-9, r.HighConf); len(got) == len(base) {
		t.Error("ruleset unchanged above HighSupp")
	}
}

func TestSliceDiff(t *testing.T) {
	s, _ := fixedSlice(t, Options{})
	onlyA, onlyB := s.Diff(0, 0.4, 0.2, 0.6)
	// A = {R2,R6,R3,R4}; B = {R3,R4}. onlyA = {R2,R6}, onlyB = {}.
	if len(onlyA) != 2 || len(onlyB) != 0 {
		t.Errorf("Diff = %v / %v", onlyA, onlyB)
	}
	// Symmetric call swaps the sides.
	swapA, swapB := s.Diff(0.2, 0.6, 0, 0.4)
	if len(swapA) != 0 || len(swapB) != 2 {
		t.Errorf("swapped Diff = %v / %v", swapA, swapB)
	}
	// Identical settings: no difference.
	a, b := s.Diff(0.1, 0.3, 0.1, 0.3)
	if len(a) != 0 || len(b) != 0 {
		t.Errorf("self Diff = %v / %v", a, b)
	}
}

func TestRulesWithItems(t *testing.T) {
	s, d := fixedSlice(t, Options{ContentIndex: true})
	// Item 2 ("c") appears in R3, R4, R5, R6.
	got, err := s.RulesWithItems(0, 0, itemset.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("RulesWithItems(c) = %v, want 4 rules", got)
	}
	for _, id := range got {
		r, _ := d.Rule(id)
		if !r.Items().Contains(2) {
			t.Errorf("rule %v does not mention item 2", r)
		}
	}
	// Conjunction: items 0 and 2 → R3, R4 only.
	got, err = s.RulesWithItems(0, 0, itemset.New(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("RulesWithItems(a,c) = %v, want 2 rules", got)
	}
	// Thresholds still apply.
	got, err = s.RulesWithItems(0.2, 0.6, itemset.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("RulesWithItems(b) above thresholds = %v, want none", got)
	}
	// Empty item filter degrades to plain Rules.
	got, err = s.RulesWithItems(0, 0.4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Errorf("RulesWithItems(no filter) = %d rules, want 4", len(got))
	}
}

func TestRulesMergedMatchesRules(t *testing.T) {
	s, _ := fixedSlice(t, Options{ContentIndex: true})
	for _, q := range []struct{ supp, conf float64 }{{0, 0}, {0.2, 0.6}, {0, 0.4}, {0.9, 0.9}} {
		want := map[rules.ID]bool{}
		for _, id := range s.Rules(q.supp, q.conf) {
			want[id] = true
		}
		got, err := s.RulesMerged(q.supp, q.conf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("RulesMerged(%g,%g) = %v, want %d ids", q.supp, q.conf, got, len(want))
		}
		for _, id := range got {
			if !want[id] {
				t.Fatalf("RulesMerged(%g,%g) returned unexpected id %d", q.supp, q.conf, id)
			}
		}
	}
}

func TestRulesMergedRequiresIndex(t *testing.T) {
	s, _ := fixedSlice(t, Options{})
	if _, err := s.RulesMerged(0, 0); err == nil {
		t.Error("merge collection without index accepted")
	}
}

func TestRulesWithItemsRequiresIndex(t *testing.T) {
	s, _ := fixedSlice(t, Options{})
	if _, err := s.RulesWithItems(0, 0, itemset.New(1)); err == nil {
		t.Error("content query without index accepted")
	}
}

func TestBuildSliceContentIndexRequiresDict(t *testing.T) {
	if _, err := BuildSlice(0, 1, nil, Options{ContentIndex: true}); err == nil {
		t.Error("ContentIndex without Dict accepted")
	}
}

func TestDominates(t *testing.T) {
	if !Dominates(0.1, 0.2, 0.3, 0.4) {
		t.Error("lower cut should dominate higher")
	}
	if Dominates(0.5, 0.2, 0.3, 0.4) {
		t.Error("mixed ordering should not dominate")
	}
	if !Dominates(0.3, 0.4, 0.3, 0.4) {
		t.Error("domination is reflexive per Definition 13")
	}
}

func TestIndex(t *testing.T) {
	x := NewIndex()
	s0, err := BuildSlice(0, 1, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Append(s0); err != nil {
		t.Fatal(err)
	}
	s2, err := BuildSlice(2, 1, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Append(s2); err == nil {
		t.Error("out-of-order slice accepted")
	}
	if x.Windows() != 1 {
		t.Errorf("Windows = %d", x.Windows())
	}
	if _, err := x.Slice(0); err != nil {
		t.Errorf("Slice(0): %v", err)
	}
	if _, err := x.Slice(1); err == nil {
		t.Error("missing window resolved")
	}
}

// randomIDStats builds a random per-window ruleset with plausible counts.
func randomIDStats(r *rand.Rand, n uint32, numRules int) []IDStats {
	out := make([]IDStats, numRules)
	for i := range out {
		xy := uint32(1 + r.Intn(int(n)))
		x := xy + uint32(r.Intn(int(n-xy)+1))
		out[i] = IDStats{
			ID:    rules.ID(i),
			Stats: rules.Stats{CountXY: xy, CountX: x, N: n},
		}
	}
	return out
}

func TestPropertyRulesMatchLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := uint32(20 + r.Intn(80))
		rs := randomIDStats(r, n, 1+r.Intn(60))
		s, err := BuildSlice(0, n, rs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 20; probe++ {
			ms, mc := r.Float64(), r.Float64()
			got := s.Rules(ms, mc)
			want := map[rules.ID]bool{}
			for _, x := range rs {
				if x.Stats.Support() >= ms && x.Stats.Confidence() >= mc {
					want[x.ID] = true
				}
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: Rules(%g,%g) = %d ids, want %d", trial, ms, mc, len(got), len(want))
			}
			for _, id := range got {
				if !want[id] {
					t.Fatalf("trial %d: unexpected rule %d", trial, id)
				}
			}
		}
	}
}

func TestPropertyRegionStability(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	for trial := 0; trial < 20; trial++ {
		n := uint32(20 + r.Intn(80))
		rs := randomIDStats(r, n, 1+r.Intn(40))
		s, err := BuildSlice(0, n, rs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 10; probe++ {
			ms, mc := r.Float64(), r.Float64()
			reg := s.Region(ms, mc)
			base := s.Count(ms, mc)
			if reg.Empty != (base == 0) {
				t.Fatalf("trial %d: Empty=%v but count=%d", trial, reg.Empty, base)
			}
			if reg.Empty {
				continue
			}
			if reg.NumRules != base {
				t.Fatalf("trial %d: region rules %d != count %d", trial, reg.NumRules, base)
			}
			// Random points inside the region yield the same count.
			for k := 0; k < 5; k++ {
				ps := reg.LowSupp + (reg.HighSupp-reg.LowSupp)*(1e-7+r.Float64()*(1-2e-7))
				pc := reg.LowConf + (reg.HighConf-reg.LowConf)*(1e-7+r.Float64()*(1-2e-7))
				if got := s.Count(ps, pc); got != base {
					t.Fatalf("trial %d: count changed inside region at (%g,%g): %d vs %d (region %v)",
						trial, ps, pc, got, base, reg)
				}
			}
		}
	}
}

func TestPropertyDominationMonotonicity(t *testing.T) {
	// Lemma 4: lowering either threshold never removes rules.
	r := rand.New(rand.NewSource(33))
	n := uint32(50)
	rs := randomIDStats(r, n, 60)
	s, err := BuildSlice(0, n, rs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for probe := 0; probe < 50; probe++ {
		ms, mc := r.Float64(), r.Float64()
		ms2 := ms * r.Float64() // <= ms
		mc2 := mc * r.Float64() // <= mc
		hi := s.Rules(ms, mc)
		lo := s.Rules(ms2, mc2)
		set := map[rules.ID]bool{}
		for _, id := range lo {
			set[id] = true
		}
		for _, id := range hi {
			if !set[id] {
				t.Fatalf("rule %d valid at (%g,%g) but missing at dominated (%g,%g)", id, ms, mc, ms2, mc2)
			}
		}
	}
}

func BenchmarkSliceRules(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	rs := randomIDStats(r, 10000, 20000)
	s, err := BuildSlice(0, 10000, rs, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Rules(0.5, 0.5)
	}
}

func BenchmarkSliceRegion(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	rs := randomIDStats(r, 10000, 20000)
	s, err := BuildSlice(0, 10000, rs, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Region(0.5, 0.5)
	}
}

func TestDominationGraphPaperExample(t *testing.T) {
	s, _ := fixedSlice(t, Options{})
	// Locations sorted: L0=(0.11,0.25) L1=(0.11,0.5) L2=(0.33,0.75).
	// L0 dominates L1 (same supp, lower conf) and L1 dominates L2;
	// L0->L2 is transitive, so the immediate graph has exactly 2 edges.
	edges := s.DominationGraph()
	if len(edges) != 2 {
		t.Fatalf("edges = %v, want 2 immediate edges", edges)
	}
	has := func(from, to int) bool {
		for _, e := range edges {
			if e.From == from && e.To == to {
				return true
			}
		}
		return false
	}
	if !has(0, 1) || !has(1, 2) {
		t.Errorf("edges = %v, want 0->1 and 1->2", edges)
	}
}

func TestPropertyDominationGraphSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	n := uint32(40)
	rs := randomIDStats(r, n, 25)
	s, err := BuildSlice(0, n, rs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	locs := s.Locations()
	for _, e := range s.DominationGraph() {
		a, b := locs[e.From], locs[e.To]
		if a.Supp > b.Supp || a.Conf > b.Conf {
			t.Fatalf("edge %v violates dominance: (%g,%g) -> (%g,%g)", e, a.Supp, a.Conf, b.Supp, b.Conf)
		}
		// Lemma 4: querying at the dominating cut includes the dominated
		// location's rules.
		got := s.Rules(a.Supp, a.Conf)
		set := map[rules.ID]bool{}
		for _, id := range got {
			set[id] = true
		}
		for _, id := range b.Rules {
			if !set[id] {
				t.Fatalf("rule %d at dominated location missing from dominating cut's answer", id)
			}
		}
	}
}

func TestPanorama(t *testing.T) {
	s, _ := fixedSlice(t, Options{})
	out := s.Panorama(30, 8, 0.2, 0.6)
	if !strings.Contains(out, "window 2: 6 rules at 3 locations") {
		t.Errorf("panorama header wrong:\n%s", out)
	}
	if !strings.Contains(out, "+") {
		t.Error("request marker missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+8+1 { // header + rows + axis
		t.Errorf("panorama has %d lines:\n%s", len(lines), out)
	}
	// Unmarked render still draws the locations.
	plain := s.Panorama(30, 8, -1, -1)
	if strings.Count(plain, ".")+strings.Count(plain, ":") == 0 {
		t.Errorf("no density characters in:\n%s", plain)
	}
	// Tiny dimensions are clamped, not rejected.
	if got := s.Panorama(1, 1, -1, -1); got == "" {
		t.Error("clamped panorama empty")
	}
	// Empty slice renders a note.
	empty, err := BuildSlice(0, 1, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.Panorama(20, 5, -1, -1), "no rules") {
		t.Error("empty slice panorama missing note")
	}
}

// Boundary semantics under test below (Definition 11 / Lemma 4): rule
// qualification is inclusive (Supp >= minsupp, Conf >= minconf), and stable
// regions are half-open below and closed above (Low < min <= High). A query
// point lying exactly ON a distinct parameter value therefore belongs to the
// region whose High bound equals that value, and the rules at that exact
// location are part of the answer.

// TestRulesOnGridBoundaryInclusive pins the >= threshold semantics with
// hand-computed on-grid queries against the paper's fixed slice.
func TestRulesOnGridBoundaryInclusive(t *testing.T) {
	s, _ := fixedSlice(t, Options{})
	// Locations: (1/9,0.25)x2, (1/9,0.5)x2, (3/9,0.75)x2.
	cases := []struct {
		name       string
		supp, conf float64
		want       int
	}{
		{"exactly-at-top-location", 3.0 / 9, 0.75, 2},
		{"just-above-top-supp", math.Nextafter(3.0/9, 1), 0.75, 0},
		{"just-above-top-conf", 3.0 / 9, math.Nextafter(0.75, 1), 0},
		{"exactly-at-mid-location", 1.0 / 9, 0.5, 4},
		{"just-above-mid-conf", 1.0 / 9, math.Nextafter(0.5, 1), 2},
		{"on-grid-supp-off-grid-conf", 1.0 / 9, 0.3, 4},
		{"exactly-at-bottom-location", 1.0 / 9, 0.25, 6},
	}
	for _, c := range cases {
		if got := s.Count(c.supp, c.conf); got != c.want {
			t.Errorf("%s: Count(%g,%g) = %d, want %d", c.name, c.supp, c.conf, got, c.want)
		}
		if got := len(s.Rules(c.supp, c.conf)); got != c.want {
			t.Errorf("%s: len(Rules(%g,%g)) = %d, want %d", c.name, c.supp, c.conf, got, c.want)
		}
	}
}

// TestRegionOnGridBoundary pins Region's behavior for query points exactly on
// a cut location, with hand-computed expected boxes on the fixed slice.
func TestRegionOnGridBoundary(t *testing.T) {
	s, _ := fixedSlice(t, Options{})
	cases := []struct {
		name               string
		supp, conf         float64
		wantRules          int
		loS, hiS, loC, hiC float64
		cutSupp, cutConf   float64
	}{
		// Query exactly at the top location: it still qualifies, and the
		// region's high corner IS the query point.
		{"at-top-location", 3.0 / 9, 0.75, 2, 0, 3.0 / 9, 0.5, 0.75, 3.0 / 9, 0.75},
		// Query exactly at the middle location: the grid cell below-left of
		// the point, closed at the point itself.
		{"at-mid-location", 1.0 / 9, 0.5, 4, 0, 1.0 / 9, 0.25, 0.5, 1.0 / 9, 0.5},
		// On-grid support with a higher on-grid confidence: the low-support
		// row is invisible above conf 0.5, so the box expands across the
		// support boundary the query sits on.
		{"on-grid-supp-high-conf", 1.0 / 9, 0.75, 2, 0, 3.0 / 9, 0.5, 0.75, 3.0 / 9, 0.75},
	}
	for _, c := range cases {
		r := s.Region(c.supp, c.conf)
		if r.Empty {
			t.Errorf("%s: region unexpectedly empty", c.name)
			continue
		}
		if r.NumRules != c.wantRules {
			t.Errorf("%s: NumRules = %d, want %d", c.name, r.NumRules, c.wantRules)
		}
		if r.LowSupp != c.loS || r.HighSupp != c.hiS || r.LowConf != c.loC || r.HighConf != c.hiC {
			t.Errorf("%s: region supp(%g,%g] conf(%g,%g], want supp(%g,%g] conf(%g,%g]",
				c.name, r.LowSupp, r.HighSupp, r.LowConf, r.HighConf, c.loS, c.hiS, c.loC, c.hiC)
		}
		if r.CutSupp != c.cutSupp || r.CutConf != c.cutConf {
			t.Errorf("%s: cut = (%g,%g), want (%g,%g)", c.name, r.CutSupp, r.CutConf, c.cutSupp, c.cutConf)
		}
		// Half-open-below containment: the on-grid query point is inside.
		if !(r.LowSupp < c.supp && c.supp <= r.HighSupp && r.LowConf < c.conf && c.conf <= r.HighConf) {
			t.Errorf("%s: query (%g,%g) not inside region %v", c.name, c.supp, c.conf, r)
		}
	}
}

// TestPropertyRegionOnGridBoundary probes Region with every on-grid
// (support, confidence) combination of random slices — the exact coordinates
// where a search boundary condition would flip the answer — and checks the
// region contains the query and reports a count that holds across the box.
func TestPropertyRegionOnGridBoundary(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	for trial := 0; trial < 100; trial++ {
		n := uint32(10 + r.Intn(60))
		rs := randomIDStats(r, n, 1+r.Intn(25))
		s, err := BuildSlice(0, n, rs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		locs := s.Locations()
		for i := range locs {
			for j := range locs {
				qs, qc := locs[i].Supp, locs[j].Conf
				reg := s.Region(qs, qc)
				base := s.Count(qs, qc)
				if reg.Empty != (base == 0) {
					t.Fatalf("trial %d: Empty=%v but Count(%g,%g)=%d", trial, reg.Empty, qs, qc, base)
				}
				if reg.NumRules != base {
					t.Fatalf("trial %d: NumRules=%d but Count(%g,%g)=%d", trial, reg.NumRules, qs, qc, base)
				}
				// The on-grid query must fall inside its own region
				// (half-open below, closed above).
				if !(reg.LowSupp < qs && qs <= reg.HighSupp && reg.LowConf < qc && qc <= reg.HighConf) {
					t.Fatalf("trial %d: on-grid query (%g,%g) outside region %v", trial, qs, qc, reg)
				}
				// The count is constant across the region: at the closed high
				// corner, the cut location, just above the open low corner,
				// and the midpoint.
				probes := [][2]float64{
					{reg.HighSupp, reg.HighConf},
					{reg.CutSupp, reg.CutConf},
					{math.Nextafter(reg.LowSupp, 2), math.Nextafter(reg.LowConf, 2)},
					{(reg.LowSupp + reg.HighSupp) / 2, (reg.LowConf + reg.HighConf) / 2},
				}
				for _, p := range probes {
					if p[0] <= reg.LowSupp || p[0] > reg.HighSupp || p[1] <= reg.LowConf || p[1] > reg.HighConf {
						continue // degenerate box edge; probe landed outside
					}
					if got := s.Count(p[0], p[1]); got != base {
						t.Fatalf("trial %d: count changed inside region at (%g,%g): %d vs %d (query (%g,%g), region %v)",
							trial, p[0], p[1], got, base, qs, qc, reg)
					}
				}
			}
		}
	}
}

// TestRegionNDOnGridBoundary checks the n-dimensional grid cell has the same
// on-cut semantics: a query exactly at a location's coordinates lands in the
// cell closed at those coordinates, and the location's rules qualify.
func TestRegionNDOnGridBoundary(t *testing.T) {
	d := rules.NewDict()
	mk := func(a, b itemset.Item, countXY, countX uint32) IDStats {
		id := d.Add(rules.Rule{Ant: itemset.New(a), Cons: itemset.New(b)})
		return IDStats{ID: id, Stats: rules.Stats{CountXY: countXY, CountX: countX, N: 9}}
	}
	rs := []IDStats{
		mk(0, 1, 1, 4), // (1/9, 0.25)
		mk(1, 0, 1, 2), // (1/9, 0.5)
		mk(0, 2, 3, 4), // (3/9, 0.75)
		mk(2, 0, 3, 4), // (3/9, 0.75)
	}
	measures := []Measure{
		{Name: "support", Eval: rules.Stats.Support},
		{Name: "confidence", Eval: rules.Stats.Confidence},
	}
	s, err := BuildSliceND(0, 9, rs, measures)
	if err != nil {
		t.Fatal(err)
	}
	// Query exactly at the top location.
	reg, err := s.Region([]float64{3.0 / 9, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Empty || reg.NumRules != 2 {
		t.Fatalf("on-grid ND query: region %+v, want 2 rules", reg)
	}
	if reg.Low[0] != 1.0/9 || reg.High[0] != 3.0/9 || reg.Low[1] != 0.5 || reg.High[1] != 0.75 {
		t.Errorf("ND region bounds Low=%v High=%v, want Low=[1/9 0.5] High=[1/3 0.75]", reg.Low, reg.High)
	}
	// Inclusive qualification at the exact coordinates, exclusive just above.
	if n, _ := s.Count([]float64{3.0 / 9, 0.75}); n != 2 {
		t.Errorf("ND Count at exact location = %d, want 2", n)
	}
	if n, _ := s.Count([]float64{math.Nextafter(3.0/9, 1), 0.75}); n != 0 {
		t.Errorf("ND Count just above location = %d, want 0", n)
	}
	// Above every location: empty region capped at the measure's natural max.
	reg, err = s.Region([]float64{0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Empty || reg.High[0] != 1 || reg.High[1] != 1 {
		t.Errorf("empty ND region = %+v, want Empty with High=[1 1]", reg)
	}
}

func TestPropertyDiffMatchesTwoQueries(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 15; trial++ {
		n := uint32(20 + r.Intn(60))
		rs := randomIDStats(r, n, 1+r.Intn(50))
		s, err := BuildSlice(0, n, rs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 10; probe++ {
			sa, ca := r.Float64(), r.Float64()
			sb, cb := r.Float64(), r.Float64()
			onlyA, onlyB := s.Diff(sa, ca, sb, cb)
			inA := map[rules.ID]bool{}
			for _, id := range s.Rules(sa, ca) {
				inA[id] = true
			}
			inB := map[rules.ID]bool{}
			for _, id := range s.Rules(sb, cb) {
				inB[id] = true
			}
			for _, id := range onlyA {
				if !inA[id] || inB[id] {
					t.Fatalf("trial %d: %d misclassified in onlyA", trial, id)
				}
			}
			for _, id := range onlyB {
				if !inB[id] || inA[id] {
					t.Fatalf("trial %d: %d misclassified in onlyB", trial, id)
				}
			}
			wantA, wantB := 0, 0
			for id := range inA {
				if !inB[id] {
					wantA++
				}
			}
			for id := range inB {
				if !inA[id] {
					wantB++
				}
			}
			if len(onlyA) != wantA || len(onlyB) != wantB {
				t.Fatalf("trial %d: diff sizes (%d,%d), want (%d,%d)", trial, len(onlyA), len(onlyB), wantA, wantB)
			}
		}
	}
}
