package eps

import (
	"math"
	"math/rand"
	"testing"

	"tara/internal/itemset"
	"tara/internal/rules"
)

// randomSlice builds a slice from random rule statistics, the same
// construction the differential cache tests use: nLocs distinct-ish count
// pairs under one N, several rules per location.
func randomSlice(t *testing.T, rng *rand.Rand, nLocs int) *Slice {
	t.Helper()
	const n = 1000
	var rs []IDStats
	id := rules.ID(1)
	for i := 0; i < nLocs; i++ {
		countX := uint32(rng.Intn(n-1) + 1)
		countXY := uint32(rng.Intn(int(countX)) + 1)
		for k := rng.Intn(3) + 1; k > 0; k-- {
			rs = append(rs, IDStats{ID: id, Stats: rules.Stats{CountXY: countXY, CountX: countX, N: n}})
			id++
		}
	}
	s, err := BuildSlice(0, n, rs, Options{})
	if err != nil {
		t.Fatalf("BuildSlice: %v", err)
	}
	return s
}

func idsEqual(a, b []rules.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPostingsMatchScan proves the zero-copy posting path returns exactly the
// rules (and order) of the reference scan at random and on-grid points.
func TestPostingsMatchScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randomSlice(t, rng, 120)
	points := make([][2]float64, 0, 600)
	for i := 0; i < 400; i++ {
		points = append(points, [2]float64{rng.Float64(), rng.Float64()})
	}
	// On-grid points hit the inclusive-boundary corners.
	for _, l := range s.Locations() {
		points = append(points, [2]float64{l.Supp, l.Conf})
	}
	points = append(points, [2]float64{0, 0}, [2]float64{1, 1})
	var p Postings
	buf := make([]rules.ID, 0, 64)
	for _, pt := range points {
		want := s.ScanRules(pt[0], pt[1])
		got := s.AppendRules(buf[:0], pt[0], pt[1])
		if !idsEqual(got, want) {
			t.Fatalf("AppendRules(%v, %v): got %d ids, want %d", pt[0], pt[1], len(got), len(want))
		}
		s.PostingsInto(&p, pt[0], pt[1])
		if p.Len() != len(want) {
			t.Fatalf("Postings.Len at (%v, %v) = %d, want %d", pt[0], pt[1], p.Len(), len(want))
		}
		if dec := p.AppendTo(buf[:0]); !idsEqual(dec, want) {
			t.Fatalf("Postings.AppendTo(%v, %v) mismatch", pt[0], pt[1])
		}
		if dec := s.Postings(pt[0], pt[1]).IDs(); !idsEqual(dec, want) {
			t.Fatalf("Postings.IDs(%v, %v) mismatch", pt[0], pt[1])
		}
	}
}

// TestPostingsZeroCopySharing asserts the domination-graph sharing claim: a
// dominating cut's posting segments literally alias the dominated cut's
// bytes (same backing rows, longer suffixes), not copies.
func TestPostingsZeroCopySharing(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := randomSlice(t, rng, 60)
	low := s.Postings(0, 0)      // dominates everything
	high := s.Postings(0.5, 0.5) // dominated: subset of rows/suffixes
	if low.Len() != s.NumRuleRefs() {
		t.Fatalf("full postings Len = %d, want %d", low.Len(), s.NumRuleRefs())
	}
	if high.Len() == 0 {
		t.Skip("degenerate random slice: no rules above (0.5, 0.5)")
	}
	// Every segment of the dominated cut must be a suffix view of one of the
	// dominating cut's segments: same final byte address.
	lastByte := func(b []byte) *byte { return &b[len(b)-1] }
	owners := map[*byte]bool{}
	for _, seg := range low.segs {
		owners[lastByte(seg)] = true
	}
	for i, seg := range high.segs {
		if !owners[lastByte(seg)] {
			t.Fatalf("segment %d of dominated cut does not alias the dominating cut's stream", i)
		}
	}
}

func TestDecodePostingsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		segs := make([][]rules.ID, rng.Intn(4))
		var want []rules.ID
		for i := range segs {
			n := rng.Intn(6)
			ids := make([]rules.ID, 0, n)
			next := uint64(rng.Intn(100))
			for j := 0; j < n; j++ {
				if next > math.MaxUint32 {
					break
				}
				ids = append(ids, rules.ID(next))
				next += uint64(rng.Intn(1000) + 1)
			}
			segs[i] = ids
			want = append(want, ids...)
		}
		enc := EncodePostings(segs)
		got, err := DecodePostings(enc)
		if err != nil {
			t.Fatalf("DecodePostings(EncodePostings): %v", err)
		}
		if !idsEqual(got, want) {
			t.Fatalf("round trip mismatch: got %v want %v", got, want)
		}
	}
}

func TestDecodePostingsRejectsMalformed(t *testing.T) {
	valid := EncodePostings([][]rules.ID{{1, 5, 9}, {2}})
	cases := map[string][]byte{
		"truncated count":      {0x80},
		"truncated first id":   {2, 0x80},
		"truncated delta":      {2, 1, 0x80},
		"count beyond stream":  {10, 1},
		"zero delta":           {2, 1, 0},
		"id overflows uint32":  {2, 0xff, 0xff, 0xff, 0xff, 0x0f, 0xff, 0xff, 0xff, 0xff, 0x0f},
		"first id over uint32": {1, 0xff, 0xff, 0xff, 0xff, 0x7f},
		"valid then truncated": append(append([]byte{}, valid...), 3, 1),
	}
	for name, b := range cases {
		if _, err := DecodePostings(b); err == nil {
			t.Errorf("%s: DecodePostings accepted %v", name, b)
		}
	}
	// Every strict prefix of a valid stream that is not a segment boundary
	// must be rejected; boundary prefixes decode to a prefix of the ids.
	want, err := DecodePostings(valid)
	if err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
	for cut := 0; cut < len(valid); cut++ {
		got, err := DecodePostings(valid[:cut])
		if err != nil {
			continue
		}
		if len(got) > len(want) || !idsEqual(got, want[:len(got)]) {
			t.Fatalf("prefix %d decoded to %v, not a prefix of %v", cut, got, want)
		}
	}
}

// TestRulesContentIndexUnaffected guards that the postings integration left
// the content-indexed collection paths intact.
func TestRulesContentIndexUnaffected(t *testing.T) {
	dict := rules.NewDict()
	mk := func(x, y itemset.Item) rules.ID {
		return dict.Add(rules.Rule{Ant: itemset.Set{x}, Cons: itemset.Set{y}})
	}
	rs := []IDStats{
		{ID: mk(1, 2), Stats: rules.Stats{CountXY: 50, CountX: 100, N: 100}},
		{ID: mk(1, 3), Stats: rules.Stats{CountXY: 50, CountX: 100, N: 100}},
		{ID: mk(2, 3), Stats: rules.Stats{CountXY: 80, CountX: 100, N: 100}},
	}
	s, err := BuildSlice(0, 100, rs, Options{ContentIndex: true, Dict: dict})
	if err != nil {
		t.Fatalf("BuildSlice: %v", err)
	}
	got, err := s.RulesWithItems(0.1, 0.1, itemset.Set{1})
	if err != nil {
		t.Fatalf("RulesWithItems: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("RulesWithItems(item 1) = %v, want 2 rules", got)
	}
	if all := s.Rules(0.1, 0.1); len(all) != 3 {
		t.Fatalf("Rules = %v, want 3 ids", all)
	}
}
