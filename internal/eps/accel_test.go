package eps

import (
	"fmt"
	"math/rand"
	"testing"

	"tara/internal/rules"
)

// Differential tests for the lookup acceleration: the skip-structure paths
// must agree exactly with the retained reference scans, and canonicalization
// must be lossless (Lemma 4).

func TestAcceleratedRulesMatchScan(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		n := uint32(20 + r.Intn(200))
		rs := randomIDStats(r, n, 1+r.Intn(150))
		s, err := BuildSlice(0, n, rs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 40; probe++ {
			ms, mc := r.Float64(), r.Float64()
			if probe%5 == 0 && len(s.supports) > 0 {
				// On-grid probes exercise the boundary-inclusive paths.
				ms = s.supports[r.Intn(len(s.supports))]
				mc = s.confs[r.Intn(len(s.confs))]
			}
			got, want := s.Rules(ms, mc), s.ScanRules(ms, mc)
			if len(got) != len(want) {
				t.Fatalf("trial %d: Rules(%g,%g)=%d ids, scan %d", trial, ms, mc, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: Rules(%g,%g)[%d]=%d, scan %d (order must match)", trial, ms, mc, i, got[i], want[i])
				}
			}
			if c := s.Count(ms, mc); c != len(want) {
				t.Fatalf("trial %d: Count(%g,%g)=%d, want %d", trial, ms, mc, c, len(want))
			}
		}
	}
}

func TestCutIndexCanonicalization(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	for trial := 0; trial < 25; trial++ {
		n := uint32(20 + r.Intn(100))
		rs := randomIDStats(r, n, 1+r.Intn(80))
		s, err := BuildSlice(0, n, rs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Any two request points with the same cut index must yield the same
		// answer; a point and its cut location must, too.
		type probe struct{ ms, mc float64 }
		byCut := map[[2]int]probe{}
		for i := 0; i < 60; i++ {
			ms, mc := r.Float64(), r.Float64()
			si, ci := s.CutIndex(ms, mc)
			key := [2]int{si, ci}
			if prev, ok := byCut[key]; ok {
				a, b := s.Rules(ms, mc), s.Rules(prev.ms, prev.mc)
				if len(a) != len(b) {
					t.Fatalf("cut (%d,%d): (%g,%g) gives %d rules, (%g,%g) gives %d",
						si, ci, ms, mc, len(a), prev.ms, prev.mc, len(b))
				}
				for j := range a {
					if a[j] != b[j] {
						t.Fatalf("cut (%d,%d): rulesets diverge at %d", si, ci, j)
					}
				}
			} else {
				byCut[key] = probe{ms, mc}
			}
			if si < len(s.supports) && ci < len(s.confs) {
				cut := s.Rules(s.supports[si], s.confs[ci])
				if len(cut) != len(s.Rules(ms, mc)) {
					t.Fatalf("request (%g,%g) disagrees with its cut location (%g,%g)",
						ms, mc, s.supports[si], s.confs[ci])
				}
			}
		}
	}
}

func TestAcceleratedNDMatchScan(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	for trial := 0; trial < 30; trial++ {
		n := uint32(20 + r.Intn(120))
		rs := randomIDStats(r, n, 1+r.Intn(120))
		s, err := BuildSliceND(0, n, rs, StandardMeasures())
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 30; probe++ {
			mins := []float64{r.Float64(), r.Float64(), r.Float64() * 3}
			got, err := s.Rules(mins)
			if err != nil {
				t.Fatal(err)
			}
			want, err := s.ScanRules(mins)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: ND Rules(%v)=%d ids, scan %d", trial, mins, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: ND Rules(%v) diverges at %d", trial, mins, i)
				}
			}
			c, err := s.Count(mins)
			if err != nil {
				t.Fatal(err)
			}
			if c != len(want) {
				t.Fatalf("trial %d: ND Count(%v)=%d, want %d", trial, mins, c, len(want))
			}
		}
	}
}

func TestAcceleratedEmptySlice(t *testing.T) {
	s, err := BuildSlice(0, 10, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Rules(0.1, 0.1); got != nil {
		t.Fatalf("empty slice Rules = %v, want nil", got)
	}
	if got := s.Count(0.1, 0.1); got != 0 {
		t.Fatalf("empty slice Count = %d, want 0", got)
	}
	if si, ci := s.CutIndex(0.1, 0.1); si != 0 || ci != 0 {
		t.Fatalf("empty slice CutIndex = (%d,%d), want (0,0)", si, ci)
	}
}

// mergedFixture builds a content-indexed slice whose rules all involve a few
// shared items, so the RulesMerged posting-list merge sees real duplication.
func mergedFixture(b *testing.B, numRules int) *Slice {
	dict := rules.NewDict()
	rs := make([]IDStats, numRules)
	n := uint32(4 * numRules)
	for i := range rs {
		// Two private items plus one of four shared items per rule.
		rl := rules.Rule{
			Ant:  []uint32{uint32(10 + 3*i), uint32(11 + 3*i)},
			Cons: []uint32{uint32(i % 4)},
		}
		id := dict.Add(rl)
		xy := uint32(1 + i%64)
		rs[i] = IDStats{ID: id, Stats: rules.Stats{CountXY: xy, CountX: xy + uint32(i%128), N: n}}
	}
	s, err := BuildSlice(0, n, rs, Options{ContentIndex: true, Dict: dict})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkRulesMergedLinear demonstrates that the RulesMerged dedup scales
// linearly in the number of qualifying rules: doubling the slice size should
// roughly double ns/op, not quadruple it.
func BenchmarkRulesMergedLinear(b *testing.B) {
	for _, size := range []int{1000, 2000, 4000, 8000} {
		s := mergedFixture(b, size)
		b.Run(fmt.Sprintf("rules=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ids, err := s.RulesMerged(0, 0)
				if err != nil {
					b.Fatal(err)
				}
				if len(ids) != size {
					b.Fatalf("got %d ids, want %d", len(ids), size)
				}
			}
		})
	}
}
