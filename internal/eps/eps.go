// Package eps implements the Evolving Parameter Space index of the paper
// (Definitions 9–13): per time window, the association rules are organized
// by their parametric locations in the (support × confidence) plane. Rules
// with identical parameter values share one location (Lemma 2); a mining
// request maps to a time-aware stable region whose ruleset is the union of
// the rules at all locations dominating the request point (Lemma 4). Online
// answering is therefore a quadrant collection over the location structure —
// no transaction data is touched.
package eps

import (
	"fmt"
	"sort"

	"tara/internal/itemset"
	"tara/internal/rules"
)

// Location is a temporal parametric location: the exact (support,
// confidence) coordinates shared by one or more rules in a window, kept with
// the integer counts they derive from.
type Location struct {
	Supp, Conf      float64
	CountXY, CountX uint32
	Rules           []rules.ID
	itemIdx         map[itemset.Item][]rules.ID
}

// Dominates reports whether a location at (s1,c1) dominates (s2,c2):
// component-wise s1 <= s2 and c1 <= c2 (Definition 13 compares cut
// locations; a lower cut admits a superset of rules).
func Dominates(s1, c1, s2, c2 float64) bool { return s1 <= s2 && c1 <= c2 }

// Region is a time-aware stable region (Definition 11): a box in the
// parameter plane within which every (minsupp, minconf) setting produces the
// same ruleset. Bounds are half-open on the low side: the region covers
// settings with LowSupp < minsupp <= HighSupp and LowConf < minconf <=
// HighConf. CutSupp/CutConf is the region's cut location (Definition 12) —
// the parametric location whose quadrant defines the ruleset; Empty marks
// the degenerate region above every rule.
type Region struct {
	Window            int
	LowSupp, HighSupp float64
	LowConf, HighConf float64
	CutSupp, CutConf  float64
	Empty             bool
	NumRules          int
}

// String renders the region for CLI output.
func (r Region) String() string {
	if r.Empty {
		return fmt.Sprintf("window %d: empty region supp(%.6g,%.6g] conf(%.6g,%.6g]",
			r.Window, r.LowSupp, r.HighSupp, r.LowConf, r.HighConf)
	}
	return fmt.Sprintf("window %d: region supp(%.6g,%.6g] conf(%.6g,%.6g] cut=(%.6g,%.6g) rules=%d",
		r.Window, r.LowSupp, r.HighSupp, r.LowConf, r.HighConf, r.CutSupp, r.CutConf, r.NumRules)
}

// IDStats couples an interned rule id with its statistics in one window.
type IDStats struct {
	ID    rules.ID
	Stats rules.Stats
}

// Options configures slice construction.
type Options struct {
	// ContentIndex builds the per-location item → rules index used by the
	// TARA-S variant for content-based exploration (Q5). Requires Dict.
	ContentIndex bool
	// Dict resolves rule ids to rules when ContentIndex is set.
	Dict *rules.Dict
}

// Slice is one window's slice of the evolving parameter space.
type Slice struct {
	Window int
	N      uint32

	locs     []Location
	supports []float64 // distinct supports, ascending
	// rows[i] indexes locs at supports[i], sorted by ascending confidence.
	rows  [][]int32
	confs []float64 // distinct confidences, ascending
	// cols[j] indexes locs at confs[j], sorted by ascending support.
	cols           [][]int32
	contentIndexed bool

	// Lookup acceleration (built once per slice, immutable afterwards).
	// rowMaxConf[i] is the largest confidence in rows[i]; rowSkip[i] is the
	// next row with a strictly larger maximum confidence (len(rows) if none),
	// forming the dominance-ordered skip structure: every row between i and
	// rowSkip[i] has max confidence <= rowMaxConf[i], so a query whose
	// minconf exceeds rowMaxConf[i] can jump straight to rowSkip[i] without
	// touching the rows in between. rowCum[i][j] counts the rules at
	// rows[i][j:], so Count needs no per-location iteration.
	rowMaxConf []float64
	rowSkip    []int32
	rowCum     [][]int32
	// rowPost[i] is row i's posting stream — the row's locations encoded as
	// self-delimiting delta-varint segments in ascending-confidence order —
	// and rowPostOff[i] the per-location byte offsets into it (see
	// postings.go). A stable region's ruleset is served as sub-slices of
	// these streams, shared zero-copy along the domination graph.
	rowPost    [][]byte
	rowPostOff [][]int32

	// lazy is non-nil for slices restored from a mapped knowledge base
	// (persist.go): per-location rule lists and the content index are
	// materialized on first touch instead of at load. Built slices leave it
	// nil and behave exactly as before.
	lazy *lazySlice
}

// BuildSlice organizes the window's rules into a parameter-space slice.
// Rules with identical (support, confidence) merge into one location; the
// identity is decided on the exact rational counts, so float rounding cannot
// split a location.
func BuildSlice(window int, n uint32, rs []IDStats, opts Options) (*Slice, error) {
	if opts.ContentIndex && opts.Dict == nil {
		return nil, fmt.Errorf("eps: ContentIndex requires a rule dictionary")
	}
	s := &Slice{Window: window, N: n, contentIndexed: opts.ContentIndex}

	// Group rules by exact location. Same (countXY, countX) under one N
	// means same support and confidence; different counts can still yield
	// the same rational measures (e.g. 1/2 and 2/4), so key on the reduced
	// float pair, which IEEE division rounds identically for equal
	// rationals.
	type locKey struct{ supp, conf float64 }
	group := map[locKey]*Location{}
	for _, r := range rs {
		k := locKey{r.Stats.Support(), r.Stats.Confidence()}
		loc := group[k]
		if loc == nil {
			loc = &Location{
				Supp:    k.supp,
				Conf:    k.conf,
				CountXY: r.Stats.CountXY,
				CountX:  r.Stats.CountX,
			}
			group[k] = loc
		}
		loc.Rules = append(loc.Rules, r.ID)
	}
	s.locs = make([]Location, 0, len(group))
	for _, loc := range group {
		sort.Slice(loc.Rules, func(i, j int) bool { return loc.Rules[i] < loc.Rules[j] })
		if opts.ContentIndex {
			loc.itemIdx = map[itemset.Item][]rules.ID{}
			for _, id := range loc.Rules {
				rl, ok := opts.Dict.Rule(id)
				if !ok {
					return nil, fmt.Errorf("eps: rule id %d missing from dictionary", id)
				}
				for _, it := range rl.Items() {
					loc.itemIdx[it] = append(loc.itemIdx[it], id)
				}
			}
		}
		s.locs = append(s.locs, *loc)
	}
	// Deterministic order: by support, then confidence.
	sort.Slice(s.locs, func(i, j int) bool {
		if s.locs[i].Supp != s.locs[j].Supp {
			return s.locs[i].Supp < s.locs[j].Supp
		}
		return s.locs[i].Conf < s.locs[j].Conf
	})
	for i := range s.locs {
		if len(s.supports) == 0 || s.supports[len(s.supports)-1] != s.locs[i].Supp {
			s.supports = append(s.supports, s.locs[i].Supp)
			s.rows = append(s.rows, nil)
		}
		row := len(s.rows) - 1
		s.rows[row] = append(s.rows[row], int32(i))
	}
	// Confidence columns, for region expansion.
	order := make([]int32, len(s.locs))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := &s.locs[order[a]], &s.locs[order[b]]
		if la.Conf != lb.Conf {
			return la.Conf < lb.Conf
		}
		return la.Supp < lb.Supp
	})
	for _, li := range order {
		c := s.locs[li].Conf
		if len(s.confs) == 0 || s.confs[len(s.confs)-1] != c {
			s.confs = append(s.confs, c)
			s.cols = append(s.cols, nil)
		}
		col := len(s.cols) - 1
		s.cols[col] = append(s.cols[col], li)
	}
	s.buildAccel()
	return s, nil
}

// buildAccel derives the skip structure and suffix rule counts from the
// finished row layout. Rows are conf-ascending, so a row's maximum
// confidence is its last location's; the skip pointers are the classic
// next-greater-element chains, built right to left in amortized linear time.
func (s *Slice) buildAccel() {
	s.rowMaxConf = make([]float64, len(s.rows))
	s.rowSkip = make([]int32, len(s.rows))
	s.rowCum = make([][]int32, len(s.rows))
	for i, idx := range s.rows {
		s.rowMaxConf[i] = s.locs[idx[len(idx)-1]].Conf
		cum := make([]int32, len(idx)+1)
		for j := len(idx) - 1; j >= 0; j-- {
			cum[j] = cum[j+1] + int32(len(s.locs[idx[j]].Rules))
		}
		s.rowCum[i] = cum
	}
	for i := len(s.rows) - 1; i >= 0; i-- {
		j := int32(i + 1)
		for j < int32(len(s.rows)) && s.rowMaxConf[j] <= s.rowMaxConf[i] {
			j = s.rowSkip[j]
		}
		s.rowSkip[i] = j
	}
	s.buildPostings()
}

// NumLocations returns the number of distinct parametric locations.
func (s *Slice) NumLocations() int { return len(s.locs) }

// NumRuleRefs returns the total number of rule references across locations,
// which equals the number of rules in the slice (each rule is stored once,
// per Lemma 3). The suffix count table answers it without touching the
// (possibly unmaterialized) rule lists.
func (s *Slice) NumRuleRefs() int {
	n := 0
	for i := range s.rowCum {
		n += int(s.rowCum[i][0])
	}
	return n
}

// Locations exposes the locations in (supp, conf) order, for inspection and
// tests; every rule list is materialized first so callers can read Rules
// directly. Callers must not mutate the returned slice.
func (s *Slice) Locations() []Location {
	s.materializeRules()
	return s.locs
}

// GridDims reports the cut-grid axis sizes: the number of distinct support
// values and distinct confidence values (Definition 12's candidate cut
// locations per axis). Build telemetry surfaces these as the slice's
// "regions/cuts per window" figures.
func (s *Slice) GridDims() (suppCuts, confCuts int) {
	return len(s.supports), len(s.confs)
}

// SupportCuts returns a copy of the slice's distinct support cut values in
// ascending order — the support axis of the cut grid (Definition 12). The
// parallel-build differential test compares these across build modes to
// assert the EPS came out identical.
func (s *Slice) SupportCuts() []float64 {
	out := make([]float64, len(s.supports))
	copy(out, s.supports)
	return out
}

// ConfidenceCuts returns a copy of the distinct confidence cut values in
// ascending order — the confidence axis of the cut grid.
func (s *Slice) ConfidenceCuts() []float64 {
	out := make([]float64, len(s.confs))
	copy(out, s.confs)
	return out
}

// CutIndex canonicalizes a request point to its time-aware stable region's
// cut location (Definition 12) by binary search over the per-axis cut grids:
// si is the index of the first distinct support >= minSupp, ci of the first
// distinct confidence >= minConf (either may be one past the end, the empty
// cut above every rule). By Lemma 4 the answer to any of the slice's
// threshold queries depends on the request point only through (si, ci) — all
// settings inside one stable region share a cut and therefore a ruleset —
// which is what makes (Window, si, ci) a lossless memoization key.
func (s *Slice) CutIndex(minSupp, minConf float64) (si, ci int) {
	return sort.SearchFloat64s(s.supports, minSupp), sort.SearchFloat64s(s.confs, minConf)
}

// forEachQualifying visits every location with Supp >= minSupp and Conf >=
// minConf, the dominated-region collection of Lemma 4. Rows below minSupp
// are excluded by binary search; rows whose maximum confidence falls below
// minConf are jumped over via the dominance-ordered skip chain, so only rows
// that contribute at least one qualifying location pay a per-row search
// (plus the strictly-increasing-max chain rows crossed while skipping).
func (s *Slice) forEachQualifying(minSupp, minConf float64, fn func(li int32)) {
	for row := sort.SearchFloat64s(s.supports, minSupp); row < len(s.rows); {
		if s.rowMaxConf[row] < minConf {
			row = int(s.rowSkip[row])
			continue
		}
		idx := s.rows[row]
		// Locations in a row are sorted by confidence.
		lo := sort.Search(len(idx), func(i int) bool { return s.locs[idx[i]].Conf >= minConf })
		for _, li := range idx[lo:] {
			fn(li)
		}
		row++
	}
}

// scanQualifying is the pre-acceleration reference collection: it visits
// every row at or above minSupp, whether or not the row contributes. It is
// retained for differential tests and as the benchmark baseline the skip
// structure is measured against.
func (s *Slice) scanQualifying(minSupp, minConf float64, fn func(li int32)) {
	start := sort.SearchFloat64s(s.supports, minSupp)
	for row := start; row < len(s.rows); row++ {
		idx := s.rows[row]
		lo := sort.Search(len(idx), func(i int) bool { return s.locs[idx[i]].Conf >= minConf })
		for _, li := range idx[lo:] {
			fn(li)
		}
	}
}

// ScanRules is Rules computed by the reference scan (no skip structure, no
// preallocation). Exported for differential tests and benchmarks only.
func (s *Slice) ScanRules(minSupp, minConf float64) []rules.ID {
	var out []rules.ID
	s.scanQualifying(minSupp, minConf, func(li int32) {
		out = append(out, s.locRules(li)...)
	})
	return out
}

// ScanCount is Count computed by the reference scan. Exported for
// differential tests and benchmarks only.
func (s *Slice) ScanCount(minSupp, minConf float64) int {
	n := 0
	s.scanQualifying(minSupp, minConf, func(li int32) { n += len(s.locRules(li)) })
	return n
}

// Rules returns the ids of all rules satisfying (minSupp, minConf) in this
// window. Qualification is inclusive — a rule whose support or confidence
// equals the threshold exactly is part of the answer, matching the closed
// dominated quadrant of Lemma 4. The order is deterministic — locations by ascending support then
// confidence, ids ascending within a location — but not globally sorted by
// id; sorting a large answer would dominate the collection cost.
func (s *Slice) Rules(minSupp, minConf float64) []rules.ID {
	out := s.AppendRules(nil, minSupp, minConf)
	if len(out) == 0 {
		return nil
	}
	return out
}

// Count returns the number of rules satisfying (minSupp, minConf) without
// materializing them. With the suffix rule counts, each contributing row
// costs one binary search and one array read.
func (s *Slice) Count(minSupp, minConf float64) int {
	n := 0
	for row := sort.SearchFloat64s(s.supports, minSupp); row < len(s.rows); {
		if s.rowMaxConf[row] < minConf {
			row = int(s.rowSkip[row])
			continue
		}
		idx := s.rows[row]
		lo := sort.Search(len(idx), func(i int) bool { return s.locs[idx[i]].Conf >= minConf })
		n += int(s.rowCum[row][lo])
		row++
	}
	return n
}

// RulesWithItems returns rules satisfying (minSupp, minConf) that mention
// every item in items (content-based exploration, Q5). It requires the
// slice to have been built with ContentIndex (the TARA-S configuration);
// the per-location indexes are merged during collection, which is the extra
// cost the paper attributes to TARA-S.
func (s *Slice) RulesWithItems(minSupp, minConf float64, items itemset.Set) ([]rules.ID, error) {
	if !s.contentIndexed {
		return nil, fmt.Errorf("eps: slice %d was built without a content index", s.Window)
	}
	if len(items) == 0 {
		return s.Rules(minSupp, minConf), nil
	}
	var out []rules.ID
	s.forEachQualifying(minSupp, minConf, func(li int32) {
		idx := s.locItemIdx(li)
		// Probe the rarest posting list first, then verify the rest.
		first := idx[items[0]]
		for _, it := range items[1:] {
			if cand := idx[it]; len(cand) < len(first) {
				first = cand
			}
		}
	cand:
		for _, id := range first {
			for _, it := range items {
				if !containsID(idx[it], id) {
					continue cand
				}
			}
			out = append(out, id)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// RulesMerged collects the qualifying rules the TARA-S way: by merging the
// per-location rule content indexes instead of concatenating plain rule
// lists. This is the collection path whose extra merge cost the paper
// reports for TARA-S on small result sets; it requires a content-indexed
// slice.
func (s *Slice) RulesMerged(minSupp, minConf float64) ([]rules.ID, error) {
	if !s.contentIndexed {
		return nil, fmt.Errorf("eps: slice %d was built without a content index", s.Window)
	}
	// The answer size is known up front (every qualifying rule appears in the
	// merge), so the seen-set and output can be sized exactly: the dedup is
	// one hash probe per posting-list entry, linear in the total posting
	// volume of the qualifying locations.
	seen := make(map[rules.ID]struct{}, s.Count(minSupp, minConf))
	s.forEachQualifying(minSupp, minConf, func(li int32) {
		for _, ids := range s.locItemIdx(li) {
			for _, id := range ids {
				seen[id] = struct{}{}
			}
		}
	})
	out := make([]rules.ID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func containsID(ids []rules.ID, id rules.ID) bool {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	return i < len(ids) && ids[i] == id
}

// maxRegionExpansion bounds how many grid boundaries Region crosses per
// direction while growing the stable box. Regions are reported correctly
// regardless; the cap only limits how far a best-effort maximal box extends
// in pathological slices.
const maxRegionExpansion = 64

// Region returns a time-aware stable region containing the request point
// (minSupp, minConf): a parameter box within which the output ruleset is
// guaranteed unchanged (Definition 11). The box starts at the grid cell
// bounded by the distinct parameter values adjacent to the request — stable
// by construction, since no parametric location can change qualification
// without a boundary crossing — and greedily expands across boundaries whose
// locations never qualify anywhere in the box. This is the
// parameter-recommendation answer of query Q3 (the TARA-R response).
//
// Boundary semantics: because qualification is inclusive (>=) and region
// bounds are half-open below (Low < min <= High), a request lying exactly on
// a distinct parameter value belongs to the region whose High bound equals
// that value — the on-grid point and its cut location yield the same
// ruleset, and the answer changes only strictly beyond the value.
func (s *Slice) Region(minSupp, minConf float64) Region {
	r := Region{Window: s.Window}
	// Grid cell indexes: hiS/hiC point at the first distinct value >= the
	// request (possibly one past the end), loS/loC at the previous one.
	hiS := sort.SearchFloat64s(s.supports, minSupp)
	hiC := sort.SearchFloat64s(s.confs, minConf)
	loS, loC := hiS-1, hiC-1

	suppAt := func(i int) float64 {
		if i < 0 {
			return 0
		}
		if i >= len(s.supports) {
			return 1
		}
		return s.supports[i]
	}
	confAt := func(j int) float64 {
		if j < 0 {
			return 0
		}
		if j >= len(s.confs) {
			return 1
		}
		return s.confs[j]
	}

	r.NumRules = s.Count(minSupp, minConf)
	r.Empty = r.NumRules == 0
	r.CutSupp, r.CutConf = suppAt(hiS), confAt(hiC)

	// Expansion predicates, exact for a single boundary crossing given the
	// current bounds:
	//   - crossing support boundary si is invisible iff every location in
	//     that row has Conf <= LowConf (it can never qualify in the box);
	//   - crossing confidence boundary cj is invisible iff every location in
	//     that column has Supp <= LowSupp.
	rowInvisible := func(si int, lowConf float64) bool {
		for _, li := range s.rows[si] {
			if s.locs[li].Conf > lowConf {
				return false
			}
		}
		return true
	}
	colInvisible := func(cj int, lowSupp float64) bool {
		for _, li := range s.cols[cj] {
			if s.locs[li].Supp > lowSupp {
				return false
			}
		}
		return true
	}
	for step := 0; step < maxRegionExpansion && loS >= 0 && rowInvisible(loS, confAt(loC)); step++ {
		loS--
	}
	for step := 0; step < maxRegionExpansion && hiS < len(s.supports) && rowInvisible(hiS, confAt(loC)); step++ {
		hiS++
	}
	for step := 0; step < maxRegionExpansion && loC >= 0 && colInvisible(loC, suppAt(loS)); step++ {
		loC--
	}
	for step := 0; step < maxRegionExpansion && hiC < len(s.confs) && colInvisible(hiC, suppAt(loS)); step++ {
		hiC++
	}

	r.LowSupp, r.HighSupp = suppAt(loS), suppAt(hiS)
	r.LowConf, r.HighConf = confAt(loC), confAt(hiC)
	if !r.boxStable(s) {
		// Expansions interact across axes in rare configurations (a later
		// low-bound move can re-expose an already-crossed boundary); fall
		// back to the grid cell, which is stable unconditionally.
		hiS = sort.SearchFloat64s(s.supports, minSupp)
		hiC = sort.SearchFloat64s(s.confs, minConf)
		r.LowSupp, r.HighSupp = suppAt(hiS-1), suppAt(hiS)
		r.LowConf, r.HighConf = confAt(hiC-1), confAt(hiC)
	}
	r.CutSupp, r.CutConf = r.HighSupp, r.HighConf
	return r
}

// boxStable verifies the joint stability predicate: every location either
// qualifies at every point of the box (Supp >= HighSupp and Conf >=
// HighConf) or at none (Supp <= LowSupp or Conf <= LowConf).
func (r Region) boxStable(s *Slice) bool {
	for i := range s.locs {
		l := &s.locs[i]
		if l.Supp >= r.HighSupp && l.Conf >= r.HighConf {
			continue
		}
		if l.Supp <= r.LowSupp || l.Conf <= r.LowConf {
			continue
		}
		return false
	}
	return true
}

// Diff partitions the rules that differ between two parameter settings in
// this window: onlyA satisfies settingA but not settingB, onlyB vice versa
// (the per-window core of the ruleset comparison query Q2). Because
// qualification is monotone, a single pass over the locations suffices.
func (s *Slice) Diff(suppA, confA, suppB, confB float64) (onlyA, onlyB []rules.ID) {
	for i := range s.locs {
		l := &s.locs[i]
		inA := l.Supp >= suppA && l.Conf >= confA
		inB := l.Supp >= suppB && l.Conf >= confB
		switch {
		case inA && !inB:
			onlyA = append(onlyA, s.locRules(int32(i))...)
		case inB && !inA:
			onlyB = append(onlyB, s.locRules(int32(i))...)
		}
	}
	sort.Slice(onlyA, func(i, j int) bool { return onlyA[i] < onlyA[j] })
	sort.Slice(onlyB, func(i, j int) bool { return onlyB[i] < onlyB[j] })
	return onlyA, onlyB
}

// DominationEdge links a dominating location to one it immediately
// dominates in the slice's domination graph (Definition 13): From's cut
// admits a superset of To's rules, with no third location strictly between
// them. The edges form the transitive reduction of the dominance partial
// order over parametric locations.
type DominationEdge struct {
	From, To int // indexes into Locations()
}

// DominationGraph materializes the immediate-domination edges among the
// slice's parametric locations. The graph is what TARA traverses
// conceptually when collecting dominated regions (Lemma 4); the quadrant
// walk is its iterative equivalent. Complexity is O(L²·L) in the worst
// case; it is intended for inspection, visualization and tests, not for the
// query path.
func (s *Slice) DominationGraph() []DominationEdge {
	dominates := func(a, b int) bool {
		return (s.locs[a].Supp <= s.locs[b].Supp && s.locs[a].Conf <= s.locs[b].Conf) && a != b
	}
	var edges []DominationEdge
	for a := range s.locs {
		for b := range s.locs {
			if !dominates(a, b) {
				continue
			}
			immediate := true
			for c := range s.locs {
				if c != a && c != b && dominates(a, c) && dominates(c, b) {
					immediate = false
					break
				}
			}
			if immediate {
				edges = append(edges, DominationEdge{From: a, To: b})
			}
		}
	}
	return edges
}

// Index is the evolving parameter space: one slice per window.
type Index struct {
	slices []*Slice
}

// NewIndex returns an empty EPS index.
func NewIndex() *Index { return &Index{} }

// Append adds the next window's slice. Slices must arrive in window order.
func (x *Index) Append(s *Slice) error {
	if s.Window != len(x.slices) {
		return fmt.Errorf("eps: slice for window %d appended at position %d", s.Window, len(x.slices))
	}
	x.slices = append(x.slices, s)
	return nil
}

// Slice returns the slice for window w.
func (x *Index) Slice(w int) (*Slice, error) {
	if w < 0 || w >= len(x.slices) {
		return nil, fmt.Errorf("eps: window %d out of range [0,%d)", w, len(x.slices))
	}
	return x.slices[w], nil
}

// Windows returns the number of indexed windows.
func (x *Index) Windows() int { return len(x.slices) }
