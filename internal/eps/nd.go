package eps

import (
	"fmt"
	"math"
	"sort"

	"tara/internal/rules"
)

// n-dimensional parameter space. Definition 9 defines the EPS over n
// parameters plus time; the 2-dimensional Slice specializes it to the
// (support, confidence) plane the paper evaluates. SliceND is the general
// form: rules live at their exact coordinates under a caller-chosen list of
// measures, and a mining request is a lower-bound vector. Time-aware
// stable regions generalize to hyper-boxes (Definition 11) whose bounds are
// the adjacent distinct values per dimension — the grid cell, which is
// stable by the same argument as in two dimensions.

// Measure extracts one interestingness coordinate from a rule's statistics.
type Measure struct {
	Name string
	Eval func(rules.Stats) float64
}

// StandardMeasures returns the three measures of Section 2.2.2: support,
// confidence and lift (Formulas 1-3).
func StandardMeasures() []Measure {
	return []Measure{
		{Name: "support", Eval: rules.Stats.Support},
		{Name: "confidence", Eval: rules.Stats.Confidence},
		{Name: "lift", Eval: rules.Stats.Lift},
	}
}

// LocationND is a parametric location in n dimensions.
type LocationND struct {
	Coords []float64
	Rules  []rules.ID
}

// SliceND is one window's n-dimensional parameter-space slice.
type SliceND struct {
	Window   int
	N        uint32
	measures []Measure
	// locs are sorted lexicographically by coordinates, so dimension 0 is
	// the primary sort key for the pruned quadrant scan.
	locs []LocationND
	// distinct[d] holds the sorted distinct values of dimension d.
	distinct [][]float64

	// Lookup acceleration, mirroring the 2-dimensional slice. suffMax[d][i]
	// is the maximum of dimension d over locs[i:], so a scan can stop as soon
	// as no remaining location can satisfy the failing dimension. skip[d][i]
	// (for d >= 1; dimension 0 is handled by the sorted order) is the next
	// location with a strictly larger coordinate in d: the locations jumped
	// over all share the failing below-threshold coordinate and can never
	// qualify.
	suffMax [][]float64
	skip    [][]int32
}

// BuildSliceND organizes the window's rules by their coordinates under the
// given measures (at least one).
func BuildSliceND(window int, n uint32, rs []IDStats, measures []Measure) (*SliceND, error) {
	if len(measures) == 0 {
		return nil, fmt.Errorf("eps: need at least one measure")
	}
	s := &SliceND{Window: window, N: n, measures: measures}
	group := map[string]*LocationND{}
	keyBuf := make([]byte, 0, 8*len(measures))
	for _, r := range rs {
		coords := make([]float64, len(measures))
		keyBuf = keyBuf[:0]
		for d, m := range measures {
			coords[d] = m.Eval(r.Stats)
			keyBuf = append(keyBuf, fmt.Sprintf("%x;", coords[d])...)
		}
		k := string(keyBuf)
		loc := group[k]
		if loc == nil {
			loc = &LocationND{Coords: coords}
			group[k] = loc
		}
		loc.Rules = append(loc.Rules, r.ID)
	}
	s.locs = make([]LocationND, 0, len(group))
	for _, loc := range group {
		sort.Slice(loc.Rules, func(i, j int) bool { return loc.Rules[i] < loc.Rules[j] })
		s.locs = append(s.locs, *loc)
	}
	sort.Slice(s.locs, func(i, j int) bool {
		a, b := s.locs[i].Coords, s.locs[j].Coords
		for d := range a {
			if a[d] != b[d] {
				return a[d] < b[d]
			}
		}
		return false
	})
	s.distinct = make([][]float64, len(measures))
	for d := range measures {
		vals := make([]float64, 0, len(s.locs))
		for i := range s.locs {
			vals = append(vals, s.locs[i].Coords[d])
		}
		sort.Float64s(vals)
		w := 0
		for i, v := range vals {
			if i == 0 || v != vals[w-1] {
				vals[w] = v
				w++
			}
		}
		s.distinct[d] = vals[:w]
	}
	s.buildAccel()
	return s, nil
}

// buildAccel derives the suffix maxima and next-greater skip chains from the
// sorted location order.
func (s *SliceND) buildAccel() {
	d := len(s.measures)
	s.suffMax = make([][]float64, d)
	s.skip = make([][]int32, d)
	for dim := 0; dim < d; dim++ {
		sm := make([]float64, len(s.locs))
		for i := len(s.locs) - 1; i >= 0; i-- {
			sm[i] = s.locs[i].Coords[dim]
			if i+1 < len(s.locs) && sm[i+1] > sm[i] {
				sm[i] = sm[i+1]
			}
		}
		s.suffMax[dim] = sm
		if dim == 0 {
			continue
		}
		sk := make([]int32, len(s.locs))
		for i := len(s.locs) - 1; i >= 0; i-- {
			j := int32(i + 1)
			for j < int32(len(s.locs)) && s.locs[j].Coords[dim] <= s.locs[i].Coords[dim] {
				j = sk[j]
			}
			sk[i] = j
		}
		s.skip[dim] = sk
	}
}

// forEachQualifying visits every location meeting all lower bounds. The
// dimension-0 prefix is excluded by binary search (locations are sorted with
// dimension 0 primary); a location failing dimension d jumps the scan along
// d's skip chain, and the scan stops outright once the suffix maximum of a
// failing dimension falls below its bound.
func (s *SliceND) forEachQualifying(mins []float64, fn func(*LocationND)) {
	i := sort.Search(len(s.locs), func(i int) bool { return s.locs[i].Coords[0] >= mins[0] })
locs:
	for i < len(s.locs) {
		l := &s.locs[i]
		for d := 1; d < len(mins); d++ {
			if l.Coords[d] < mins[d] {
				if s.suffMax[d][i] < mins[d] {
					break locs
				}
				i = int(s.skip[d][i])
				continue locs
			}
		}
		fn(l)
		i++
	}
}

// Measures returns the slice's measure list.
func (s *SliceND) Measures() []Measure { return s.measures }

// NumLocations returns the number of distinct parametric locations.
func (s *SliceND) NumLocations() int { return len(s.locs) }

func (s *SliceND) checkMins(mins []float64) error {
	if len(mins) != len(s.measures) {
		return fmt.Errorf("eps: %d thresholds for %d measures", len(mins), len(s.measures))
	}
	return nil
}

// Rules returns the rules whose every coordinate meets the corresponding
// lower bound. The scan skips below-threshold dimension-0 prefixes via
// binary search and jumps over non-qualifying runs via the per-dimension
// skip chains.
func (s *SliceND) Rules(mins []float64) ([]rules.ID, error) {
	if err := s.checkMins(mins); err != nil {
		return nil, err
	}
	var out []rules.ID
	s.forEachQualifying(mins, func(l *LocationND) {
		out = append(out, l.Rules...)
	})
	return out, nil
}

// Count returns the number of qualifying rules without materializing them.
func (s *SliceND) Count(mins []float64) (int, error) {
	if err := s.checkMins(mins); err != nil {
		return 0, err
	}
	n := 0
	s.forEachQualifying(mins, func(l *LocationND) { n += len(l.Rules) })
	return n, nil
}

// ScanRules is Rules computed by the plain filtered scan, without the skip
// chains. Exported for differential tests and benchmarks only.
func (s *SliceND) ScanRules(mins []float64) ([]rules.ID, error) {
	if err := s.checkMins(mins); err != nil {
		return nil, err
	}
	start := sort.Search(len(s.locs), func(i int) bool { return s.locs[i].Coords[0] >= mins[0] })
	var out []rules.ID
locs:
	for i := start; i < len(s.locs); i++ {
		l := &s.locs[i]
		for d := 1; d < len(mins); d++ {
			if l.Coords[d] < mins[d] {
				continue locs
			}
		}
		out = append(out, l.Rules...)
	}
	return out, nil
}

// RegionND is an n-dimensional time-aware stable region: the grid cell of
// the request, within which the answer cannot change (no distinct parameter
// value of any dimension is crossed). Bounds are half-open below:
// Low[d] < min_d <= High[d].
type RegionND struct {
	Window   int
	Measures []string
	Low      []float64
	High     []float64
	NumRules int
	Empty    bool
}

// Region returns the stable grid cell around the request vector.
func (s *SliceND) Region(mins []float64) (RegionND, error) {
	if err := s.checkMins(mins); err != nil {
		return RegionND{}, err
	}
	r := RegionND{
		Window:   s.Window,
		Measures: make([]string, len(s.measures)),
		Low:      make([]float64, len(mins)),
		High:     make([]float64, len(mins)),
	}
	for d, m := range s.measures {
		r.Measures[d] = m.Name
		vals := s.distinct[d]
		hi := sort.SearchFloat64s(vals, mins[d])
		if hi == len(vals) {
			r.High[d] = maxMeasureBound(m.Name)
		} else {
			r.High[d] = vals[hi]
		}
		if hi == 0 {
			r.Low[d] = 0
		} else {
			r.Low[d] = vals[hi-1]
		}
	}
	n, err := s.Count(mins)
	if err != nil {
		return RegionND{}, err
	}
	r.NumRules = n
	r.Empty = n == 0
	return r, nil
}

// maxMeasureBound gives the natural upper end of a measure's range: 1 for
// the [0,1] measures, unbounded-as-infinity for ratios like lift. Keeping
// lift regions finite-but-open keeps the output readable.
func maxMeasureBound(name string) float64 {
	switch name {
	case "support", "confidence":
		return 1
	}
	return math.Inf(1)
}
