// Region postings: per-stable-region rule-ID lists materialized as zero-copy
// views into per-row delta-varint streams.
//
// Lemma 4 makes a stable region's ruleset the union of the rules at every
// parametric location dominating its canonical cut (Definition 12). Instead
// of materializing that union per request, each support row's locations are
// encoded once, at build time, into a single byte stream of self-delimiting
// segments — one segment per location, confidence-ascending, each segment a
// varint count followed by the location's sorted rule ids delta-varint
// encoded. Because every segment opens with an absolute id, any suffix of a
// row stream that starts on a segment boundary decodes standalone; the
// qualifying locations of a row under a confidence threshold are exactly such
// a suffix. A cut's postings are therefore a handful of byte sub-slices —
// one per contributing row — shared with every dominating cut along the
// domination graph (Definition 13): cut (s, c) and the cuts it dominates
// reference the same underlying bytes, lower cuts simply referencing longer
// suffixes and more rows. No region duplicates a rule id; the streams are
// written once per window and never copied again.
package eps

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"tara/internal/rules"
)

// appendLocationSegment appends one location's sorted rule ids as a
// self-delimiting segment: uvarint(count), uvarint(ids[0]) absolute, then
// uvarint deltas (strictly positive — ids within a location are sorted and
// unique).
func appendLocationSegment(dst []byte, ids []rules.ID) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ids)))
	prev := uint64(0)
	for i, id := range ids {
		v := uint64(id)
		if i == 0 {
			dst = binary.AppendUvarint(dst, v)
		} else {
			dst = binary.AppendUvarint(dst, v-prev)
		}
		prev = v
	}
	return dst
}

// decodeSegment decodes one segment from the front of b into dst, returning
// the extended slice and the bytes consumed. It is strict: truncated varints,
// counts exceeding the remaining bytes (each id costs at least one byte, so a
// larger count cannot be honest) and ids overflowing uint32 are errors, never
// panics or unbounded allocations — the properties the fuzz target checks.
func decodeSegment(dst []rules.ID, b []byte) ([]rules.ID, int, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return dst, 0, fmt.Errorf("eps: posting segment count truncated")
	}
	off := n
	if count > uint64(len(b)-off) {
		return dst, 0, fmt.Errorf("eps: posting segment claims %d ids in %d bytes", count, len(b)-off)
	}
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		v, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return dst, 0, fmt.Errorf("eps: posting id %d/%d truncated", i, count)
		}
		off += n
		if i == 0 {
			prev = v
		} else {
			if v == 0 || v > math.MaxUint32-prev {
				return dst, 0, fmt.Errorf("eps: posting delta %d invalid after id %d", v, prev)
			}
			prev += v
		}
		if prev > math.MaxUint32 {
			return dst, 0, fmt.Errorf("eps: posting id %d overflows uint32", prev)
		}
		dst = append(dst, rules.ID(prev))
	}
	return dst, off, nil
}

// appendDecodedStream decodes a full posting stream (a concatenation of
// segments) into dst. The streams it is handed are built by BuildSlice and
// immutable, so a decode failure indicates memory corruption, not bad input.
func appendDecodedStream(dst []rules.ID, b []byte) []rules.ID {
	for len(b) > 0 {
		var n int
		var err error
		dst, n, err = decodeSegment(dst, b)
		if err != nil {
			panic(fmt.Sprintf("eps: corrupt posting stream: %v", err))
		}
		b = b[n:]
	}
	return dst
}

// DecodePostings decodes an untrusted posting stream into rule ids. It is the
// strict entry point used by tests and the fuzz target; the query path goes
// through Postings.AppendTo, which trusts the build-time streams.
func DecodePostings(b []byte) ([]rules.ID, error) {
	var out []rules.ID
	for len(b) > 0 {
		var n int
		var err error
		out, n, err = decodeSegment(out, b)
		if err != nil {
			return nil, err
		}
		b = b[n:]
	}
	return out, nil
}

// EncodePostings encodes per-location id lists into one posting stream, the
// inverse of decoding segment by segment. Exported for tests and fuzzing.
func EncodePostings(segs [][]rules.ID) []byte {
	var out []byte
	for _, ids := range segs {
		out = appendLocationSegment(out, ids)
	}
	return out
}

// Postings is one stable region's ruleset as zero-copy views into the
// slice's per-row posting streams: Len rule ids spread over one byte
// sub-slice per contributing support row. The views alias build-time memory
// shared with every dominating region; a Postings value is cheap to copy and
// safe for concurrent use.
type Postings struct {
	n    int
	segs [][]byte
}

// Len returns the number of rule ids the postings decode to.
func (p Postings) Len() int { return p.n }

// Segments returns the number of byte sub-slices backing the postings (one
// per contributing support row).
func (p Postings) Segments() int { return len(p.segs) }

// AppendTo decodes the postings into dst, growing it at most once. The id
// order matches Slice.Rules: rows by ascending support, locations by
// ascending confidence within a row, ids ascending within a location.
func (p Postings) AppendTo(dst []rules.ID) []rules.ID {
	if free := cap(dst) - len(dst); free < p.n {
		grown := make([]rules.ID, len(dst), len(dst)+p.n)
		copy(grown, dst)
		dst = grown
	}
	for _, seg := range p.segs {
		dst = appendDecodedStream(dst, seg)
	}
	return dst
}

// IDs decodes the postings into a fresh exactly-sized slice (nil when empty).
func (p Postings) IDs() []rules.ID {
	if p.n == 0 {
		return nil
	}
	return p.AppendTo(make([]rules.ID, 0, p.n))
}

// buildPostings derives the per-row posting streams from the finished row
// layout; called by buildAccel once per slice. rowPostOff[i][j] is the byte
// offset of location j's segment in row i's stream (a len(row)+1 fence), so
// the qualifying suffix of a row under any confidence threshold is the
// sub-slice starting at its first qualifying location's offset.
func (s *Slice) buildPostings() {
	s.rowPost = make([][]byte, len(s.rows))
	s.rowPostOff = make([][]int32, len(s.rows))
	for i, idx := range s.rows {
		off := make([]int32, len(idx)+1)
		var stream []byte
		for j, li := range idx {
			off[j] = int32(len(stream))
			stream = appendLocationSegment(stream, s.locs[li].Rules)
		}
		off[len(idx)] = int32(len(stream))
		s.rowPost[i] = stream
		s.rowPostOff[i] = off
	}
}

// PostingsInto collects the postings of the stable region containing
// (minSupp, minConf) into p, reusing p's segment slice — the allocation-free
// variant of Postings. Rows are walked with the same skip chain as Count, so
// only contributing rows pay a binary search.
func (s *Slice) PostingsInto(p *Postings, minSupp, minConf float64) {
	p.n = 0
	p.segs = p.segs[:0]
	for row := sort.SearchFloat64s(s.supports, minSupp); row < len(s.rows); {
		if s.rowMaxConf[row] < minConf {
			row = int(s.rowSkip[row])
			continue
		}
		idx := s.rows[row]
		lo := sort.Search(len(idx), func(i int) bool { return s.locs[idx[i]].Conf >= minConf })
		if c := s.rowCum[row][lo]; c > 0 {
			p.n += int(c)
			p.segs = append(p.segs, s.rowPost[row][s.rowPostOff[row][lo]:])
		}
		row++
	}
}

// Postings returns the stable region's ruleset as zero-copy posting views
// (see the package comment on sharing along the domination graph).
func (s *Slice) Postings(minSupp, minConf float64) Postings {
	var p Postings
	s.PostingsInto(&p, minSupp, minConf)
	return p
}

// AppendRules appends the ids of all rules satisfying (minSupp, minConf) to
// dst — Rules without the per-call answer allocation, for callers that pool
// their buffers. dst grows at most once (to the exact answer size).
func (s *Slice) AppendRules(dst []rules.ID, minSupp, minConf float64) []rules.ID {
	n := s.Count(minSupp, minConf)
	if n == 0 {
		return dst
	}
	if free := cap(dst) - len(dst); free < n {
		grown := make([]rules.ID, len(dst), len(dst)+n)
		copy(grown, dst)
		dst = grown
	}
	for row := sort.SearchFloat64s(s.supports, minSupp); row < len(s.rows); {
		if s.rowMaxConf[row] < minConf {
			row = int(s.rowSkip[row])
			continue
		}
		idx := s.rows[row]
		lo := sort.Search(len(idx), func(i int) bool { return s.locs[idx[i]].Conf >= minConf })
		dst = appendDecodedStream(dst, s.rowPost[row][s.rowPostOff[row][lo]:])
		row++
	}
	return dst
}
