package eps

import (
	"fmt"
	"strings"
)

// Panorama renders the slice's rule distribution over the (support ×
// confidence) plane as a text heat map — the terminal stand-in for the
// paper's "rule-centric panorama" visualization. Each cell shows how many
// rules fall into its parameter box, on a log-ish character ramp; the
// support axis is scaled to the densest populated prefix so sparse tails
// do not flatten the picture.
//
// If markSupp/markConf are non-negative, the cell containing that request
// point is marked with '+'.
func (s *Slice) Panorama(width, height int, markSupp, markConf float64) string {
	if width < 10 {
		width = 10
	}
	if height < 5 {
		height = 5
	}
	var b strings.Builder
	if len(s.locs) == 0 {
		fmt.Fprintf(&b, "window %d: no rules\n", s.Window)
		return b.String()
	}
	maxSupp := s.supports[len(s.supports)-1]
	if maxSupp <= 0 {
		maxSupp = 1
	}
	grid := make([][]int, height)
	for i := range grid {
		grid[i] = make([]int, width)
	}
	cellOf := func(supp, conf float64) (row, col int, ok bool) {
		if supp < 0 || conf < 0 {
			return 0, 0, false
		}
		col = int(supp / maxSupp * float64(width))
		if col >= width {
			col = width - 1
		}
		row = int((1 - conf) * float64(height))
		if row >= height {
			row = height - 1
		}
		if row < 0 {
			row = 0
		}
		return row, col, true
	}
	maxCount := 1
	for i := range s.locs {
		l := &s.locs[i]
		row, col, _ := cellOf(l.Supp, l.Conf)
		grid[row][col] += s.locNumRules(int32(i))
		if grid[row][col] > maxCount {
			maxCount = grid[row][col]
		}
	}
	ramp := []byte(" .:-=*#@")
	char := func(c int) byte {
		if c == 0 {
			return ' '
		}
		// Logarithmic bucketing keeps low counts visible next to hot cells.
		idx := 1
		for t := 1; t*2 <= c && idx < len(ramp)-1; t *= 2 {
			idx++
		}
		if idx > len(ramp)-1 {
			idx = len(ramp) - 1
		}
		return ramp[idx]
	}

	markRow, markCol, marked := -1, -1, false
	if markSupp >= 0 && markConf >= 0 {
		markRow, markCol, marked = cellOf(markSupp, markConf)
	}

	fmt.Fprintf(&b, "window %d: %d rules at %d locations (x: support 0..%.4g, y: confidence 1..0, '+': request)\n",
		s.Window, s.NumRuleRefs(), s.NumLocations(), maxSupp)
	for row := 0; row < height; row++ {
		b.WriteByte('|')
		for col := 0; col < width; col++ {
			if marked && row == markRow && col == markCol {
				b.WriteByte('+')
				continue
			}
			b.WriteByte(char(grid[row][col]))
		}
		b.WriteString("|\n")
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteString("+\n")
	return b.String()
}
