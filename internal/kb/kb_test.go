package kb

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func buildImage(t *testing.T, sections map[SectionID][]byte, order []SectionID) []byte {
	t.Helper()
	b := &Builder{}
	for _, id := range order {
		b.Add(id, sections[id])
	}
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTripAllModes(t *testing.T) {
	sections := map[SectionID][]byte{
		1: []byte("hello"),
		2: {},
		7: bytes.Repeat([]byte{0xAB}, 1000),
		3: []byte("x"),
	}
	order := []SectionID{1, 2, 7, 3}
	img := buildImage(t, sections, order)

	path := filepath.Join(t.TempDir(), "test.kb")
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}

	open := map[string]func() (*File, error){
		"bytes":    func() (*File, error) { return OpenBytes(img) },
		"file":     func() (*File, error) { return Open(path) },
		"readerat": func() (*File, error) { fh, _ := os.Open(path); return OpenReaderAt(fh, int64(len(img))) },
	}
	for name, fn := range open {
		t.Run(name, func(t *testing.T) {
			f, err := fn()
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if f.Size() != int64(len(img)) {
				t.Errorf("Size = %d, want %d", f.Size(), len(img))
			}
			for id, want := range sections {
				if !f.Has(id) {
					t.Fatalf("section %d missing", id)
				}
				got, err := f.Section(id)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("section %d: got %d bytes, want %d", id, len(got), len(want))
				}
				// Cached second read agrees.
				again, err := f.Section(id)
				if err != nil || !bytes.Equal(again, want) {
					t.Errorf("section %d: second read differs", id)
				}
			}
			if f.Has(99) {
				t.Error("phantom section reported present")
			}
			if _, err := f.Section(99); err == nil {
				t.Error("phantom section read succeeded")
			}
		})
	}
}

func TestSectionAlignment(t *testing.T) {
	img := buildImage(t, map[SectionID][]byte{1: []byte("abc"), 2: []byte("defgh")}, []SectionID{1, 2})
	f, err := OpenBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// The section table records 8-aligned offsets.
	for i := 0; i < 2; i++ {
		off := binary.LittleEndian.Uint64(img[headerFixed+entrySize*i+8:])
		if off%8 != 0 {
			t.Errorf("section %d offset %d not 8-aligned", i, off)
		}
	}
}

func TestBuilderRejectsDuplicateID(t *testing.T) {
	b := &Builder{}
	b.Add(1, []byte("a"))
	b.Add(1, []byte("b"))
	if _, err := b.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("duplicate section id accepted")
	}
}

func TestOpenBytesRejects(t *testing.T) {
	img := buildImage(t, map[SectionID][]byte{1: []byte("payload")}, []SectionID{1})

	cases := []struct {
		name    string
		corrupt func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"short magic", func(b []byte) []byte { return b[:4] }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"bad version", func(b []byte) []byte { b[8] = 0xFF; return b }},
		{"huge section count", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:], 1<<30)
			return b
		}},
		{"table past end", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:], 1000)
			return b
		}},
		{"offset before header", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[headerFixed+8:], 0)
			return b
		}},
		{"offset past end", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[headerFixed+8:], uint64(len(b)))
			return b
		}},
		{"length past end", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[headerFixed+16:], uint64(len(b)))
			return b
		}},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-3] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.corrupt(append([]byte(nil), img...))
			if f, err := OpenBytes(b); err == nil {
				f.Close()
				t.Fatalf("corrupt image accepted")
			}
		})
	}
}

func TestOpenBytesRejectsDuplicateTableID(t *testing.T) {
	img := buildImage(t, map[SectionID][]byte{1: []byte("aaaa"), 2: []byte("bbbb")}, []SectionID{1, 2})
	// Rewrite section 2's table id to 1.
	binary.LittleEndian.PutUint32(img[headerFixed+entrySize:], 1)
	if f, err := OpenBytes(img); err == nil {
		f.Close()
		t.Fatal("duplicate table id accepted")
	}
}

func TestReaderAtPartialFailure(t *testing.T) {
	// A reader that fails past the header: Open succeeds (the header parses),
	// the section read reports the error instead of corrupt bytes.
	img := buildImage(t, map[SectionID][]byte{1: bytes.Repeat([]byte{1}, 64)}, []SectionID{1})
	r := truncatedReaderAt{data: img, limit: headerFixed + entrySize}
	f, err := OpenReaderAt(r, int64(len(img)))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Section(1); err == nil {
		t.Fatal("section read past reader limit succeeded")
	}
}

type truncatedReaderAt struct {
	data  []byte
	limit int
}

func (r truncatedReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(r.limit) {
		return 0, os.ErrDeadlineExceeded
	}
	end := off + int64(len(p))
	if end > int64(r.limit) {
		n := copy(p, r.data[off:r.limit])
		return n, os.ErrDeadlineExceeded
	}
	return copy(p, r.data[off:end]), nil
}

func TestEmptyContainer(t *testing.T) {
	img := buildImage(t, nil, nil)
	f, err := OpenBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Has(1) {
		t.Error("empty container has sections")
	}
}
