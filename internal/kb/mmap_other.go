//go:build !unix

package kb

import (
	"errors"
	"os"
)

// mmapFile is unavailable off unix; Open falls back to io.ReaderAt mode.
func mmapFile(*os.File, int64) ([]byte, func() error, error) {
	return nil, nil, errors.ErrUnsupported
}
