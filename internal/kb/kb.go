// Package kb implements the versioned, mmap-friendly knowledge-base
// container: a flat file of byte sections addressed by a fixed-width section
// table at the front. The layout is designed so a reader can serve queries
// straight out of the mapped bytes — every section is self-contained, offsets
// are absolute, and sections start on 8-byte boundaries.
//
// Layout (all integers little-endian, fixed width):
//
//	offset 0:  magic "TARAKB2\n" (8 bytes)
//	offset 8:  format version (uint32)
//	offset 12: section count (uint32)
//	offset 16: section table — per section 24 bytes:
//	           id (uint32), reserved (uint32, zero),
//	           offset (uint64), length (uint64)
//	then:      section payloads, each 8-byte aligned, zero padding between
//
// The container knows nothing about section contents; internal/archive,
// internal/eps and internal/tara define what lives inside their sections.
// Open maps the whole file read-only when the platform supports it and falls
// back to a portable io.ReaderAt that loads sections lazily on first access.
package kb

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
)

// Magic identifies a version-2 knowledge-base container. The first 8 bytes
// of a file distinguish it from the legacy "TARAKB1\n" stream.
const Magic = "TARAKB2\n"

// Version is the current container format version. Readers reject files with
// a different version rather than guessing at their layout.
const Version = 1

// SectionID names one section of the container. IDs are assigned by the
// writer (internal/tara); the container only requires them to be unique.
type SectionID uint32

const (
	headerFixed = 16 // magic + version + section count
	entrySize   = 24 // id + reserved + offset + length
	// maxSections bounds the section table so a corrupt count cannot drive a
	// huge allocation; real containers have fewer than ten sections.
	maxSections = 1024
)

type section struct {
	id  SectionID
	off uint64
	len uint64
}

// Builder assembles a container in memory. Sections are written in Add
// order; WriteTo computes the table and emits the whole file.
type Builder struct {
	sections []SectionID
	data     [][]byte
}

// Add appends one section. Adding the same id twice is a programming error
// surfaced at WriteTo time.
func (b *Builder) Add(id SectionID, data []byte) {
	b.sections = append(b.sections, id)
	b.data = append(b.data, data)
}

// WriteTo emits the container. It implements io.WriterTo.
func (b *Builder) WriteTo(w io.Writer) (int64, error) {
	seen := map[SectionID]bool{}
	for _, id := range b.sections {
		if seen[id] {
			return 0, fmt.Errorf("kb: duplicate section id %d", id)
		}
		seen[id] = true
	}
	headerLen := uint64(headerFixed + entrySize*len(b.sections))
	hdr := make([]byte, headerLen)
	copy(hdr, Magic)
	binary.LittleEndian.PutUint32(hdr[8:], Version)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(b.sections)))
	off := align8(headerLen)
	for i, id := range b.sections {
		e := hdr[headerFixed+entrySize*i:]
		binary.LittleEndian.PutUint32(e, uint32(id))
		binary.LittleEndian.PutUint64(e[8:], off)
		binary.LittleEndian.PutUint64(e[16:], uint64(len(b.data[i])))
		off = align8(off + uint64(len(b.data[i])))
	}
	var n int64
	write := func(p []byte) error {
		m, err := w.Write(p)
		n += int64(m)
		return err
	}
	if err := write(hdr); err != nil {
		return n, err
	}
	var pad [8]byte
	written := headerLen
	for _, data := range b.data {
		if p := align8(written) - written; p > 0 {
			if err := write(pad[:p]); err != nil {
				return n, err
			}
			written += p
		}
		if err := write(data); err != nil {
			return n, err
		}
		written += uint64(len(data))
	}
	return n, nil
}

func align8(v uint64) uint64 { return (v + 7) &^ 7 }

// File is an opened container. Section bytes come from one of three modes:
// "mmap" (the whole file is memory-mapped, sections alias the mapping),
// "readerat" (sections are read on first access through an io.ReaderAt and
// cached), or "bytes" (the caller handed over an in-memory image). Section
// is safe for concurrent use; the returned byte slices are read-only and
// remain valid until Close.
type File struct {
	mode     string
	data     []byte // mmap or bytes mode; nil in readerat mode
	r        io.ReaderAt
	size     int64
	sections []section
	closeFn  func() error

	mu    sync.Mutex
	cache map[SectionID][]byte // readerat mode: lazily loaded sections
}

// Open opens a container file, preferring a read-only memory mapping and
// falling back to lazy io.ReaderAt section reads when mapping is
// unavailable (non-unix platforms, or mmap failure on exotic filesystems).
func Open(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := fh.Stat()
	if err != nil {
		fh.Close()
		return nil, err
	}
	size := st.Size()
	if data, unmap, err := mmapFile(fh, size); err == nil {
		f := &File{mode: "mmap", data: data, size: size}
		f.closeFn = func() error {
			err := unmap()
			if cerr := fh.Close(); err == nil {
				err = cerr
			}
			return err
		}
		if err := f.parseHeader(); err != nil {
			f.Close()
			return nil, err
		}
		return f, nil
	}
	f := &File{mode: "readerat", r: fh, size: size, closeFn: fh.Close, cache: map[SectionID][]byte{}}
	if err := f.parseHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// OpenBytes opens an in-memory container image. The File aliases b; the
// caller must not mutate it while the File is in use.
func OpenBytes(b []byte) (*File, error) {
	f := &File{mode: "bytes", data: b, size: int64(len(b))}
	if err := f.parseHeader(); err != nil {
		return nil, err
	}
	return f, nil
}

// OpenReaderAt opens a container through an io.ReaderAt without attempting
// to map it — the portable fallback path, exported so tests exercise it on
// every platform.
func OpenReaderAt(r io.ReaderAt, size int64) (*File, error) {
	f := &File{mode: "readerat", r: r, size: size, cache: map[SectionID][]byte{}}
	if err := f.parseHeader(); err != nil {
		return nil, err
	}
	return f, nil
}

// readAt returns length bytes at off, from the mapping or the reader.
func (f *File) readAt(off, length uint64) ([]byte, error) {
	if f.data != nil {
		return f.data[off : off+length : off+length], nil
	}
	b := make([]byte, length)
	if _, err := f.r.ReadAt(b, int64(off)); err != nil {
		return nil, err
	}
	return b, nil
}

// parseHeader validates the magic, version and section table. Every offset
// and length is bounds-checked against the file size here, so Section never
// has to re-validate.
func (f *File) parseHeader() error {
	if f.size < headerFixed {
		return fmt.Errorf("kb: file too short for header (%d bytes)", f.size)
	}
	hdr, err := f.readAt(0, headerFixed)
	if err != nil {
		return fmt.Errorf("kb: reading header: %w", err)
	}
	if string(hdr[:8]) != Magic {
		return fmt.Errorf("kb: bad magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != Version {
		return fmt.Errorf("kb: unsupported container version %d (want %d)", v, Version)
	}
	count := binary.LittleEndian.Uint32(hdr[12:])
	if count > maxSections {
		return fmt.Errorf("kb: implausible section count %d", count)
	}
	tableLen := uint64(entrySize) * uint64(count)
	if headerFixed+tableLen > uint64(f.size) {
		return fmt.Errorf("kb: section table (%d entries) exceeds file size %d", count, f.size)
	}
	table, err := f.readAt(headerFixed, tableLen)
	if err != nil {
		return fmt.Errorf("kb: reading section table: %w", err)
	}
	headerEnd := headerFixed + tableLen
	seen := map[SectionID]bool{}
	f.sections = make([]section, count)
	for i := range f.sections {
		e := table[entrySize*i:]
		s := section{
			id:  SectionID(binary.LittleEndian.Uint32(e)),
			off: binary.LittleEndian.Uint64(e[8:]),
			len: binary.LittleEndian.Uint64(e[16:]),
		}
		if seen[s.id] {
			return fmt.Errorf("kb: duplicate section id %d", s.id)
		}
		seen[s.id] = true
		if s.off < headerEnd {
			return fmt.Errorf("kb: section %d offset %d overlaps header", s.id, s.off)
		}
		if s.off > uint64(f.size) || s.len > uint64(f.size)-s.off {
			return fmt.Errorf("kb: section %d [%d,+%d) exceeds file size %d", s.id, s.off, s.len, f.size)
		}
		f.sections[i] = s
	}
	return nil
}

// Section returns the bytes of section id. In readerat mode the section is
// loaded on first access and cached; in mmap/bytes mode it aliases the
// underlying image. The returned slice must not be mutated.
func (f *File) Section(id SectionID) ([]byte, error) {
	for _, s := range f.sections {
		if s.id != id {
			continue
		}
		if f.data != nil {
			return f.data[s.off : s.off+s.len : s.off+s.len], nil
		}
		f.mu.Lock()
		defer f.mu.Unlock()
		if b, ok := f.cache[id]; ok {
			return b, nil
		}
		b, err := f.readAt(s.off, s.len)
		if err != nil {
			return nil, fmt.Errorf("kb: reading section %d: %w", id, err)
		}
		f.cache[id] = b
		return b, nil
	}
	return nil, fmt.Errorf("kb: container has no section %d", id)
}

// Has reports whether the container holds section id.
func (f *File) Has(id SectionID) bool {
	for _, s := range f.sections {
		if s.id == id {
			return true
		}
	}
	return false
}

// Mode reports how section bytes are served: "mmap", "readerat" or "bytes".
func (f *File) Mode() string { return f.mode }

// Size returns the container file size in bytes.
func (f *File) Size() int64 { return f.size }

// Close releases the mapping or underlying file. Section slices obtained
// from an mmap-mode File are invalid after Close.
func (f *File) Close() error {
	if f.closeFn == nil {
		return nil
	}
	fn := f.closeFn
	f.closeFn = nil
	return fn()
}
