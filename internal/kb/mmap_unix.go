//go:build unix

package kb

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps the whole file read-only. The returned func unmaps it.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 {
		return nil, nil, fmt.Errorf("kb: cannot map %d-byte file", size)
	}
	if int64(int(size)) != size {
		return nil, nil, fmt.Errorf("kb: file size %d exceeds address space", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
