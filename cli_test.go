package tara_bench

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// Integration tests that build and exercise the three executables end to
// end. They invoke the Go toolchain, so they are skipped in -short mode.

func buildTool(t *testing.T, pkg string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("binary integration test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	return string(out)
}

func TestCLITaraOneShot(t *testing.T) {
	bin := buildTool(t, "./cmd/tara")
	out := run(t, bin, "-tx", "2000", "-batches", "4", "-q", "mine w=0 supp=0.02 conf=0.4")
	if !strings.Contains(out, "rules in window 0") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestCLITaraSaveLoad(t *testing.T) {
	bin := buildTool(t, "./cmd/tara")
	kb := filepath.Join(t.TempDir(), "kb.tara")
	first := run(t, bin, "-tx", "2000", "-batches", "4",
		"-save", kb, "-q", "recommend w=1 supp=0.02 conf=0.4")
	if _, err := os.Stat(kb); err != nil {
		t.Fatalf("knowledge base not written: %v", err)
	}
	second := run(t, bin, "-kb", kb, "-q", "recommend w=1 supp=0.02 conf=0.4")
	// Both runs must report the same stable region (the line starting with
	// "window 1:").
	extract := func(out string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "window 1:") {
				return line
			}
		}
		return ""
	}
	a, b := extract(first), extract(second)
	if a == "" || a != b {
		t.Errorf("regions differ after reload:\n%q\nvs\n%q", a, b)
	}
}

func TestCLITaraSaveMappedMmap(t *testing.T) {
	bin := buildTool(t, "./cmd/tara")
	kb := filepath.Join(t.TempDir(), "kb.mapped")
	first := run(t, bin, "-tx", "2000", "-batches", "4",
		"-save", kb, "-saveformat", "mapped", "-q", "mine w=0 supp=0.02 conf=0.4")
	if _, err := os.Stat(kb); err != nil {
		t.Fatalf("mapped knowledge base not written: %v", err)
	}
	// Reopen it both ways: memory-mapped and via the auto-detecting heap
	// loader. All three answers must agree.
	mapped := run(t, bin, "-kb", kb, "-mmap", "-q", "mine w=0 supp=0.02 conf=0.4")
	if !strings.Contains(mapped, "(mmap)") && !strings.Contains(mapped, "(readerat)") {
		t.Errorf("-mmap did not report a mapped load mode:\n%s", mapped)
	}
	loaded := run(t, bin, "-kb", kb, "-q", "mine w=0 supp=0.02 conf=0.4")
	extract := func(out string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "rules in window 0") {
				return line
			}
		}
		return ""
	}
	a, m, l := extract(first), extract(mapped), extract(loaded)
	if a == "" || a != m || a != l {
		t.Errorf("answers diverge across load modes:\n%q\n%q\n%q", a, m, l)
	}
}

func TestCLITaraREPL(t *testing.T) {
	bin := buildTool(t, "./cmd/tara")
	cmd := exec.Command(bin, "-tx", "1500", "-batches", "3")
	cmd.Stdin = strings.NewReader("stats\nmine w=0 supp=0.02 conf=0.4\nbogus query\nquit\n")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("REPL run: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "knowledge base:") {
		t.Errorf("stats output missing:\n%s", text)
	}
	if !strings.Contains(text, "rules in window 0") {
		t.Errorf("mine output missing:\n%s", text)
	}
	if !strings.Contains(text, "error:") {
		t.Errorf("bad query not reported:\n%s", text)
	}
}

// TestCLITaraServeUsage checks that `tara serve` exposes the daemon's flag
// set (internal/server.Run is the single flag source shared with cmd/tarad),
// including the admission flags, via -h.
func TestCLITaraServeUsage(t *testing.T) {
	bin := buildTool(t, "./cmd/tara")
	cmd := exec.Command(bin, "serve", "-h")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Errorf("serve -h exited 0; want the help-requested error path:\n%s", out)
	}
	text := string(out)
	for _, flagName := range []string{"-addr", "-admission", "-minlimit", "-maxinflight", "-queuewait", "-kb", "-mmap", "-admissionwindow", "-admissiontolerance"} {
		if !strings.Contains(text, "\n  "+flagName+" ") && !strings.Contains(text, "\n  "+flagName+"\n") {
			t.Errorf("serve -h output missing %s:\n%s", flagName, text)
		}
	}
}

func TestCLIMaras(t *testing.T) {
	bin := buildTool(t, "./cmd/maras")
	out := run(t, bin, "-reports", "2500", "-topk", "10")
	if !strings.Contains(out, "precision@10") {
		t.Errorf("unexpected output:\n%s", out)
	}
	if !strings.Contains(out, "TRUE DDI") {
		t.Errorf("no planted interaction surfaced:\n%s", out)
	}
}

func TestCLITarabench(t *testing.T) {
	bin := buildTool(t, "./cmd/tarabench")
	out := run(t, bin, "-exp", "tab4")
	if !strings.Contains(out, "Table 4") || !strings.Contains(out, "0.0002") {
		t.Errorf("unexpected output:\n%s", out)
	}
	// Unknown experiment must fail with a clear message.
	cmd := exec.Command(bin, "-exp", "fig99")
	combined, err := cmd.CombinedOutput()
	if err == nil {
		t.Errorf("unknown experiment accepted:\n%s", combined)
	}
}
