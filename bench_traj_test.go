package tara_bench

import (
	"sync"
	"testing"

	"tara/internal/harness"
	"tara/internal/tara"
	"tara/internal/traj"
)

// The BenchmarkTraj* family measures the columnar trajectory engine: the
// full-archive aggregate scan through the window-major snapshot versus the
// naive per-rule decode, and the bounded-heap top-K ranking. CI runs these
// with -benchtime=1x as a smoke test and gates them with benchstat.

var (
	trajOnce sync.Once
	trajFW   *tara.Framework
	trajSnap *traj.Snapshot
	trajErr  error
)

// trajFixture builds the trajectory experiment's knowledge base and its
// columnar snapshot once per process.
func trajFixture(b *testing.B) (*tara.Framework, *traj.Snapshot) {
	b.Helper()
	trajOnce.Do(func() {
		trajFW, trajErr = harness.TrajFramework(1)
		if trajErr != nil {
			return
		}
		trajSnap, trajErr = traj.Build(trajFW.Archive())
	})
	if trajErr != nil {
		b.Fatal(trajErr)
	}
	return trajFW, trajSnap
}

// BenchmarkTrajColumnarScan: every rule's coverage/mean/stddev/stability/
// drift over the full archive, streamed through the columnar snapshot.
func BenchmarkTrajColumnarScan(b *testing.B) {
	_, snap := trajFixture(b)
	last := snap.Windows() - 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snap.AggregateRange(0, last, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrajNaiveScan: the same aggregates through per-rule varint
// decodes — the path the columnar engine replaces.
func BenchmarkTrajNaiveScan(b *testing.B) {
	fw, snap := trajFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.TrajNaiveScan(fw, snap, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopK: the full framework-level ranking query (snapshot reuse,
// aggregate memoization, bounded heap, rule materialization).
func BenchmarkTopK(b *testing.B) {
	fw, snap := trajFixture(b)
	last := snap.Windows() - 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := fw.TopKTrajectories(0, last, 0.005, 0.1, traj.ByDrift, 10)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty top-K answer")
		}
	}
}
