package tara_bench

import (
	"io"
	"log/slog"
	"net/http"
	"sync"
	"testing"

	"tara/internal/harness"
	"tara/internal/rules"
	"tara/internal/server"
	"tara/internal/tara"
)

// The BenchmarkOnline* family measures the online query path on a synthetic
// 10k-location slice (the acceptance workload of the query-cache PR): the
// retained pre-optimization linear scan, the accelerated cold lookup, and
// the warm cached answer. CI runs these with -benchtime=1x as a smoke test.

// onlinePoint is a fixed mid-grid request point; benchmarks want a stable
// answer size, the harness's random sweep covers the distribution.
const (
	onlineSupp = 0.5
	onlineConf = 0.5
)

var (
	onlineOnce sync.Once
	onlineFw   *tara.Framework
	onlineErr  error
)

func onlineFramework(b *testing.B) *tara.Framework {
	b.Helper()
	onlineOnce.Do(func() {
		onlineFw, onlineErr = harness.OnlineFramework(10000, 41)
	})
	if onlineErr != nil {
		b.Fatal(onlineErr)
	}
	return onlineFw
}

// materializeOnline rebuilds the Mine answer views from an id list, so the
// scan and cold benches measure the same end-to-end work the cached path
// replaces (id collection + dictionary/archive materialization).
func materializeOnline(b *testing.B, f *tara.Framework, ids []rules.ID) []tara.RuleView {
	views := make([]tara.RuleView, len(ids))
	for i, id := range ids {
		r, ok := f.RuleDict().Rule(id)
		if !ok {
			b.Fatalf("unknown rule id %d", id)
		}
		st, ok := f.Archive().StatsAt(id, 0)
		if !ok {
			b.Fatalf("rule %d missing archived stats", id)
		}
		views[i] = tara.RuleView{ID: id, Rule: r, Stats: st}
	}
	return views
}

// BenchmarkOnlineScanMine is the pre-optimization baseline: a linear pass
// over every parametric location, then answer materialization.
func BenchmarkOnlineScanMine(b *testing.B) {
	f := onlineFramework(b)
	slice, err := f.Index().Slice(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		views := materializeOnline(b, f, slice.ScanRules(onlineSupp, onlineConf))
		if len(views) == 0 {
			b.Fatal("empty answer")
		}
	}
}

// BenchmarkOnlineColdMine is the accelerated id collection (skip structure,
// no cache), then answer materialization.
func BenchmarkOnlineColdMine(b *testing.B) {
	f := onlineFramework(b)
	slice, err := f.Index().Slice(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		views := materializeOnline(b, f, slice.Rules(onlineSupp, onlineConf))
		if len(views) == 0 {
			b.Fatal("empty answer")
		}
	}
}

// BenchmarkOnlineWarmMine serves the full Mine answer from the query cache.
func BenchmarkOnlineWarmMine(b *testing.B) {
	f := onlineFramework(b)
	if _, err := f.Mine(0, onlineSupp, onlineConf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		views, err := f.Mine(0, onlineSupp, onlineConf)
		if err != nil {
			b.Fatal(err)
		}
		if len(views) == 0 {
			b.Fatal("empty answer")
		}
	}
}

// BenchmarkOnlineWarmMineAppend serves the warm Mine answer through the
// zero-copy MineAppend path into one reused caller-owned buffer — the
// steady-state allocation floor of the warm serving path.
func BenchmarkOnlineWarmMineAppend(b *testing.B) {
	f := onlineFramework(b)
	dst, err := f.MineAppend(nil, 0, onlineSupp, onlineConf)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, err = f.MineAppend(dst[:0], 0, onlineSupp, onlineConf)
		if err != nil {
			b.Fatal(err)
		}
		if len(dst) == 0 {
			b.Fatal("empty answer")
		}
	}
}

// benchDiscardRW drops the response body so the encoded benchmark times the
// daemon's work rather than a recorder's buffering.
type benchDiscardRW struct{ h http.Header }

func (d *benchDiscardRW) Header() http.Header {
	if d.h == nil {
		d.h = http.Header{}
	}
	return d.h
}
func (d *benchDiscardRW) Write(p []byte) (int, error) { return len(p), nil }
func (d *benchDiscardRW) WriteHeader(int)             {}

// BenchmarkOnlineWarmEncodedMine drives the daemon's full /mine path over
// ServeHTTP with the encoded-response byte cache warm: routing, tracing and
// the pre-encoded body written straight to the (discarded) wire.
func BenchmarkOnlineWarmEncodedMine(b *testing.B) {
	f := onlineFramework(b)
	srv, err := server.New(server.Config{
		Framework: f,
		Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()
	req, err := http.NewRequest(http.MethodGet, "/mine?w=0&supp=0.5&conf=0.5", nil)
	if err != nil {
		b.Fatal(err)
	}
	w := &benchDiscardRW{}
	h.ServeHTTP(w, req) // prime the byte cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, req)
	}
	b.StopTimer()
	if st := srv.ByteCacheStats(); st.Hits == 0 {
		b.Fatalf("benchmark never hit the byte cache: %+v", st)
	}
}

// BenchmarkEncodedColdMine measures the streaming encode tail in isolation:
// the byte cache is disabled, so every request re-answers from the warm
// query cache and streams the body to the discarded wire in 32KB chunks
// instead of serving pre-encoded bytes.
func BenchmarkEncodedColdMine(b *testing.B) {
	f := onlineFramework(b)
	srv, err := server.New(server.Config{
		Framework:     f,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
		ByteCacheSize: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()
	req, err := http.NewRequest(http.MethodGet, "/mine?w=0&supp=0.5&conf=0.5", nil)
	if err != nil {
		b.Fatal(err)
	}
	w := &benchDiscardRW{}
	h.ServeHTTP(w, req) // warm the query cache; the byte cache stays off
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, req)
	}
}

// BenchmarkEncodedGzipMine serves the warm gzip-precompressed variant: the
// cached compressed bytes written straight to the wire, no per-request
// compression.
func BenchmarkEncodedGzipMine(b *testing.B) {
	f := onlineFramework(b)
	srv, err := server.New(server.Config{
		Framework:    f,
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
		GzipMinBytes: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()
	req, err := http.NewRequest(http.MethodGet, "/mine?w=0&supp=0.5&conf=0.5", nil)
	if err != nil {
		b.Fatal(err)
	}
	req.Header.Set("Accept-Encoding", "gzip")
	w := &benchDiscardRW{}
	h.ServeHTTP(w, req) // prime: identity encode + variant derivation
	h.ServeHTTP(w, req)
	if w.Header().Get("Content-Encoding") != "gzip" {
		b.Fatalf("warm response not gzip-coded: %v", w.Header())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, req)
	}
	b.StopTimer()
	if st := srv.ByteCacheStats(); st.Hits == 0 {
		b.Fatalf("benchmark never hit the byte cache: %+v", st)
	}
}

// BenchmarkEncodedPagedMine serves a warm limit=100 page of the same answer —
// the pagination fast path for dashboards that only render the first screen.
func BenchmarkEncodedPagedMine(b *testing.B) {
	f := onlineFramework(b)
	srv, err := server.New(server.Config{
		Framework: f,
		Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()
	req, err := http.NewRequest(http.MethodGet, "/mine?w=0&supp=0.5&conf=0.5&limit=100", nil)
	if err != nil {
		b.Fatal(err)
	}
	w := &benchDiscardRW{}
	h.ServeHTTP(w, req) // prime the byte cache with the page
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, req)
	}
	b.StopTimer()
	if st := srv.ByteCacheStats(); st.Hits == 0 {
		b.Fatalf("benchmark never hit the byte cache: %+v", st)
	}
}

// BenchmarkOnlineScanCount is the pre-optimization counting baseline.
func BenchmarkOnlineScanCount(b *testing.B) {
	f := onlineFramework(b)
	slice, err := f.Index().Slice(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if slice.ScanCount(onlineSupp, onlineConf) == 0 {
			b.Fatal("empty answer")
		}
	}
}

// BenchmarkOnlineColdCount counts via the suffix arrays and skip chains.
func BenchmarkOnlineColdCount(b *testing.B) {
	f := onlineFramework(b)
	slice, err := f.Index().Slice(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if slice.Count(onlineSupp, onlineConf) == 0 {
			b.Fatal("empty answer")
		}
	}
}

// BenchmarkOnlineWarmCount serves Count from the query cache.
func BenchmarkOnlineWarmCount(b *testing.B) {
	f := onlineFramework(b)
	if _, err := f.Count(0, onlineSupp, onlineConf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := f.Count(0, onlineSupp, onlineConf)
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("empty answer")
		}
	}
}
