// Package tara_bench holds the testing.B benchmarks that regenerate the
// paper's evaluation, one benchmark (family) per table and figure. The
// benches reuse the experiment harness builders at a reduced scale so the
// whole suite finishes in minutes; cmd/tarabench runs the full sweeps and
// prints the paper-style rows.
package tara_bench

import (
	"fmt"
	"sync"
	"testing"

	"tara/internal/gen"
	"tara/internal/harness"
	"tara/internal/maras"
)

// benchScale keeps benchmark datasets modest; tarabench uses scale 1.
const benchScale = 0.5

// benchDatasets are the two contrasting workloads used by the benches:
// sparse-short retail and dense Quest transactions.
var benchDatasetNames = []string{"retail", "t5k"}

var (
	sysCache   = map[string]*harness.Systems{}
	sysCacheMu sync.Mutex
)

func systemsFor(b *testing.B, name string) *harness.Systems {
	b.Helper()
	sysCacheMu.Lock()
	defer sysCacheMu.Unlock()
	if s, ok := sysCache[name]; ok {
		return s
	}
	spec, err := harness.DatasetByName(name)
	if err != nil {
		b.Fatal(err)
	}
	s, err := harness.BuildSystems(spec, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	sysCache[name] = s
	return s
}

// BenchmarkFig6MARASPrecision measures the MARAS pipeline on one synthetic
// FAERS quarter and reports precision@10 against the planted interactions.
func BenchmarkFig6MARASPrecision(b *testing.B) {
	ds, truth, err := gen.FAERS(gen.FAERSParams{
		Reports: 3000, NumDrugs: 80, NumADRs: 60, NumDDIs: 15, Seed: 20141,
	})
	if err != nil {
		b.Fatal(err)
	}
	truthKeys := map[string]bool{}
	for _, d := range truth {
		truthKeys[d.Key()] = true
	}
	var precision float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		signals, err := maras.Mine(ds, maras.Params{MinSupportCount: 8})
		if err != nil {
			b.Fatal(err)
		}
		hits := 0
		for _, s := range maras.TopK(signals, 10) {
			for _, k := range gen.SignalKeys(ds, s) {
				if truthKeys[k] {
					hits++
					break
				}
			}
		}
		precision = float64(hits) / 10
	}
	b.ReportMetric(precision, "precision@10")
}

// BenchmarkTab2Rankings measures the three Table 2 ranking methods on one
// quarter.
func BenchmarkTab2Rankings(b *testing.B) {
	ds, _, err := gen.FAERS(gen.FAERSParams{
		Reports: 3000, NumDrugs: 80, NumADRs: 60, NumDDIs: 15, Seed: 20153,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("maras", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := maras.Mine(ds, maras.Params{MinSupportCount: 8}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("confidence", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := maras.RankBaseline(ds, maras.ByConfidence, 8, 5, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reporting-ratio", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := maras.RankBaseline(ds, maras.ByReportingRatio, 8, 5, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTab3DatasetGeneration measures the dataset generators.
func BenchmarkTab3DatasetGeneration(b *testing.B) {
	for _, name := range []string{"retail", "t5k", "t2k", "webdocs"} {
		spec, err := harness.DatasetByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := spec.Build(benchScale); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// q1Bench runs the Figure 7/8 per-system sub-benchmarks at one parameter
// point.
func q1Bench(b *testing.B, sys *harness.Systems, label string, minSupp, minConf float64) {
	base, others := sys.BaseWindow()
	b.Run(label+"/tara", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.TARA.RuleTrajectories(base, minSupp, minConf, others); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(label+"/tara-s", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.TARASTrajectories(base, minSupp, minConf, others); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(label+"/tara-r", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.TARA.Recommend(base, minSupp, minConf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(label+"/hmine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.HMine.Trajectories(base, minSupp, minConf, others); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(label+"/paras", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.PARAS.Trajectories(base, minSupp, minConf, others); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(label+"/dctar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.DCTAR.Trajectories(base, minSupp, minConf, others); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig7VaryingSupport regenerates Figure 7's series: Q1/Q3 time at
// three support levels per dataset, for all six systems.
func BenchmarkFig7VaryingSupport(b *testing.B) {
	for _, name := range benchDatasetNames {
		sys := systemsFor(b, name)
		spec := sys.Spec
		for _, supp := range []float64{spec.SuppSweep[0], spec.SuppSweep[2], spec.SuppSweep[4]} {
			q1Bench(b, sys, fmt.Sprintf("%s/supp=%g", name, supp), supp, spec.FixedConf)
		}
	}
}

// BenchmarkFig8VaryingConfidence regenerates Figure 8's series.
func BenchmarkFig8VaryingConfidence(b *testing.B) {
	for _, name := range benchDatasetNames {
		sys := systemsFor(b, name)
		spec := sys.Spec
		for _, conf := range []float64{spec.ConfSweep[0], spec.ConfSweep[2], spec.ConfSweep[4]} {
			q1Bench(b, sys, fmt.Sprintf("%s/conf=%g", name, conf), spec.FixedSupp, conf)
		}
	}
}

// BenchmarkFig9Preprocessing regenerates Figure 9: offline preprocessing of
// the whole evolving dataset, TARA vs the H-Mine itemset pregeneration.
func BenchmarkFig9Preprocessing(b *testing.B) {
	for _, name := range benchDatasetNames {
		spec, err := harness.DatasetByName(name)
		if err != nil {
			b.Fatal(err)
		}
		db, err := spec.Build(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		windows, err := db.PartitionByCount(spec.Batches)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/tara", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := harness.BuildTARAOnly(db, spec); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/hmine", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := harness.BuildHMineOnly(windows, spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// q2Bench runs the Figure 10/11 per-system sub-benchmarks.
func q2Bench(b *testing.B, sys *harness.Systems, label string, suppA, confA, suppB, confB float64) {
	wins := sys.CompareWindows()
	b.Run(label+"/tara", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.TARA.Compare(wins, suppA, confA, suppB, confB); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(label+"/hmine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.HMine.Compare(wins, suppA, confA, suppB, confB); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(label+"/paras", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.PARAS.Compare(wins, suppA, confA, suppB, confB); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(label+"/dctar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.DCTAR.Compare(wins, suppA, confA, suppB, confB); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig10ComparisonSupport regenerates Figure 10's series.
func BenchmarkFig10ComparisonSupport(b *testing.B) {
	for _, name := range benchDatasetNames {
		sys := systemsFor(b, name)
		spec := sys.Spec
		for _, supp2 := range []float64{spec.SuppSweep[0], spec.SuppSweep[2], spec.SuppSweep[4]} {
			q2Bench(b, sys, fmt.Sprintf("%s/supp2=%g", name, supp2),
				spec.FixedSupp, spec.FixedConf, supp2, spec.FixedConf)
		}
	}
}

// BenchmarkFig11ComparisonConfidence regenerates Figure 11's series.
func BenchmarkFig11ComparisonConfidence(b *testing.B) {
	for _, name := range benchDatasetNames {
		sys := systemsFor(b, name)
		spec := sys.Spec
		for _, conf2 := range []float64{spec.ConfSweep[0], spec.ConfSweep[2], spec.ConfSweep[4]} {
			q2Bench(b, sys, fmt.Sprintf("%s/conf2=%g", name, conf2),
				spec.FixedSupp, spec.FixedConf, spec.FixedSupp, conf2)
		}
	}
}

// BenchmarkFig12ArchiveSize regenerates Figure 12: it reports the sizes of
// the pregenerated structures as metrics while timing archive decoding
// (the access path whose speed justifies the compact encoding).
func BenchmarkFig12ArchiveSize(b *testing.B) {
	for _, name := range benchDatasetNames {
		sys := systemsFor(b, name)
		arch := sys.TARA.Archive()
		ids := arch.Rules()
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				id := ids[i%len(ids)]
				if got := arch.Series(id); len(got) == 0 {
					b.Fatal("empty series")
				}
			}
			b.ReportMetric(float64(arch.SizeBytes()), "archive-bytes")
			b.ReportMetric(float64(arch.UncompressedBytes()), "uncompressed-bytes")
			b.ReportMetric(float64(sys.HMine.IndexBytes()), "hmine-bytes")
		})
	}
}

// BenchmarkTab4RollUp measures the Q4 coarse-granularity mining request,
// whose error bound the rollup experiment validates.
func BenchmarkTab4RollUp(b *testing.B) {
	for _, name := range benchDatasetNames {
		sys := systemsFor(b, name)
		spec := sys.Spec
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sys.TARA.MineRollUp(0, len(sys.Windows)-1, 2*spec.GenSupp, spec.GenConf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
