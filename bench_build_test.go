package tara_bench

import (
	"runtime"
	"testing"

	"tara/internal/harness"
	"tara/internal/tara"
)

// benchmarkBuild measures one full knowledge-base construction (per-window
// mining → rule generation → EPS → archive commit) over the synthetic retail
// workload at the given parallelism. Serial and parallel variants build the
// same inputs with the same config, so their ratio is the pipeline speedup;
// the bench-regression CI gate watches BenchmarkBuildParallel.
func benchmarkBuild(b *testing.B, parallelism int) {
	b.Helper()
	spec, err := harness.DatasetByName("retail")
	if err != nil {
		b.Fatal(err)
	}
	db, err := spec.Build(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	cfg := tara.Config{
		GenMinSupport: spec.GenSupp,
		GenMinConf:    spec.GenConf,
		MaxItemsetLen: spec.MaxLen,
		ContentIndex:  true,
		Parallelism:   parallelism,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw, err := tara.Build(db, 0, spec.Batches, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if fw.Windows() != spec.Batches {
			b.Fatalf("built %d windows, want %d", fw.Windows(), spec.Batches)
		}
	}
}

// BenchmarkBuildSerial is the legacy single-goroutine offline build.
func BenchmarkBuildSerial(b *testing.B) { benchmarkBuild(b, 1) }

// BenchmarkBuildParallel is the pipelined offline build at full GOMAXPROCS;
// its output is byte-identical to BenchmarkBuildSerial's (see
// internal/tara/build_test.go for the differential proof).
func BenchmarkBuildParallel(b *testing.B) { benchmarkBuild(b, runtime.GOMAXPROCS(0)) }
