package tara_bench

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"tara/internal/harness"
	"tara/internal/tara"
)

// The BenchmarkColdStart* family measures the mapped knowledge-base
// container: time from an on-disk file to a ready framework (heap legacy
// load versus mapped open), and the first cold query on a freshly mapped
// knowledge base. CI runs these with -benchtime=1x as a smoke test and
// gates them with benchstat.

var (
	coldOnce   sync.Once
	coldLegacy []byte
	coldMapped []byte
	coldErr    error
)

// coldImages builds the cold-start knowledge base once per process and
// returns it serialized in both formats.
func coldImages(b *testing.B) (legacy, mapped []byte) {
	b.Helper()
	// Scale 1 is the daemon's default knowledge base; smaller scales make
	// the retail generator denser (fewer transactions per window at fixed
	// thresholds), not cheaper.
	coldOnce.Do(func() {
		coldLegacy, coldMapped, coldErr = harness.ColdStartImages(1)
	})
	if coldErr != nil {
		b.Fatal(coldErr)
	}
	return coldLegacy, coldMapped
}

// coldFile writes one serialized image under the benchmark's temp dir so
// every mode starts from a real file path.
func coldFile(b *testing.B, name string, img []byte) string {
	b.Helper()
	path := filepath.Join(b.TempDir(), name)
	if err := os.WriteFile(path, img, 0o644); err != nil {
		b.Fatal(err)
	}
	return path
}

// BenchmarkColdStartHeap is the legacy path: stream-deserialize the whole
// knowledge base onto the heap.
func BenchmarkColdStartHeap(b *testing.B) {
	legacy, _ := coldImages(b)
	path := coldFile(b, "kb.legacy", legacy)
	b.SetBytes(int64(len(legacy)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fh, err := os.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		f, err := tara.Load(fh)
		fh.Close()
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdStartMapped maps the container file: open cost is the header
// and section-table walk plus eager layout validation, not data movement.
func BenchmarkColdStartMapped(b *testing.B) {
	_, mapped := coldImages(b)
	path := coldFile(b, "kb.mapped", mapped)
	b.SetBytes(int64(len(mapped)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := tara.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdMineMapped is time-to-first-answer: map the container and
// run one Mine, paying the lazy per-region materialization for that answer.
func BenchmarkColdMineMapped(b *testing.B) {
	_, mapped := coldImages(b)
	path := coldFile(b, "kb.mapped", mapped)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := tara.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		views, err := f.Mine(0, 0.01, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		if len(views) == 0 {
			b.Fatal("cold mine answered nothing")
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
