// Command tarad is the TARA query-serving daemon: it loads a persisted
// knowledge base (or builds one at startup) and answers the exploration
// queries of the Online Explorer over HTTP/JSON, concurrently, with
// per-endpoint metrics on /metrics.
//
// Usage:
//
//	tarad -kb retail.kb -addr 127.0.0.1:8775
//	tarad -gen retail -tx 20000 -batches 10 -supp 0.005 -conf 0.1
//
//	curl 'http://127.0.0.1:8775/mine?w=0&supp=0.01&conf=0.2'
//	curl 'http://127.0.0.1:8775/recommend?w=0&supp=0.01&conf=0.2'
//	curl 'http://127.0.0.1:8775/metrics'
//
// See package tara/internal/server for the endpoint list. SIGINT/SIGTERM
// trigger a graceful shutdown that drains in-flight requests.
package main

import (
	"fmt"
	"os"

	"tara/internal/server"
)

func main() {
	if err := server.Run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tarad:", err)
		os.Exit(1)
	}
}
