// Command tarabench regenerates the paper's experimental tables and figures
// (Figures 6–12, Tables 2–4, and the roll-up bound validation) on synthetic
// analogues of the paper's datasets.
//
// Usage:
//
//	tarabench -exp fig7             # one experiment
//	tarabench -exp all -scale 0.5   # everything, at half scale
//
// Output is plain text: one row per (dataset, parameter point) with one
// column per system, directly comparable to the paper's plots.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"tara/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: "+strings.Join(harness.ExperimentIDs(), ", ")+", or all")
	scale := flag.Float64("scale", 1.0, "dataset scale factor (1.0 = repository default sizes)")
	format := flag.String("format", "text", "output format: text, or csv (fig7/fig8/fig10/fig11 only)")
	jsonPath := flag.String("json", "", "also write the experiment's JSON report to this file (online and build experiments)")
	trace := flag.Bool("trace", false, "with -exp online: also print the mean per-stage Mine breakdown (cold and warm)")
	parallel := flag.Int("parallel", 0, "with -exp build: top parallelism measured (0 = GOMAXPROCS)")
	loadSec := flag.Float64("loadsec", 0, "with -exp load: seconds per phase (0 = default 3s)")
	loadRates := flag.String("loadrates", "", "with -exp load: comma-separated offered QPS rates replacing calibration (e.g. 500,4000)")
	loadProfile := flag.Bool("loadprofile", false, "with -exp load: capture a CPU profile during the peak phase and report hot functions")
	loadAdm := flag.String("loadadmission", "adaptive", "with -exp load: admission modes to measure — adaptive (static phases plus the adaptive-admission section) or static (legacy phases only)")
	flag.Parse()

	start := time.Now()
	var err error
	switch {
	case *jsonPath != "" && *exp != "online" && *exp != "build" && *exp != "coldstart" && *exp != "load" && *exp != "traj":
		err = fmt.Errorf("-json is only meaningful with -exp online, build, coldstart, load or traj (got %q)", *exp)
	case *trace && *exp != "online":
		err = fmt.Errorf("-trace is only meaningful with -exp online (got %q)", *exp)
	case *jsonPath != "" && *exp == "build":
		err = runBuildJSON(*jsonPath, *scale, *parallel)
	case *jsonPath != "" && *exp == "coldstart":
		err = runColdStartJSON(*jsonPath, *scale)
	case *jsonPath != "" && *exp == "traj":
		err = runTrajJSON(*jsonPath, *scale)
	case *exp == "load":
		err = runLoad(*jsonPath, *scale, *loadSec, *loadRates, *loadProfile, *loadAdm)
	case *jsonPath != "":
		// One measured report feeds both the table and the JSON artifact.
		err = runOnlineJSON(*jsonPath, *scale)
	case *format == "text":
		err = harness.Run(*exp, os.Stdout, *scale)
	case *format == "csv":
		err = harness.RunCSV(*exp, os.Stdout, *scale)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err == nil && *trace {
		err = runOnlineTrace(*scale)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tarabench:", err)
		os.Exit(1)
	}
	fmt.Printf("\ncompleted %s at scale %g in %v\n", *exp, *scale, time.Since(start).Round(time.Millisecond))
}

// runOnlineJSON runs the online experiment once, printing its table and
// storing the same measurements as a structured report (the checked-in
// BENCH_online_query.json is produced this way).
func runOnlineJSON(path string, scale float64) error {
	rep, err := harness.OnlineBench(scale)
	if err != nil {
		return err
	}
	if err := harness.PrintOnline(os.Stdout, rep); err != nil {
		return err
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// runBuildJSON runs the offline-build experiment once, printing its table
// and storing the measurements as a structured report (the checked-in
// BENCH_build.json is produced this way).
func runBuildJSON(path string, scale float64, maxPar int) error {
	rep, err := harness.BuildBench(scale, maxPar)
	if err != nil {
		return err
	}
	if err := harness.PrintBuild(os.Stdout, rep); err != nil {
		return err
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// runColdStartJSON runs the cold-start experiment once, printing its table
// and storing the measurements as a structured report (the checked-in
// BENCH_coldstart.json is produced this way).
func runColdStartJSON(path string, scale float64) error {
	rep, err := harness.ColdStartBench(scale)
	if err != nil {
		return err
	}
	if err := harness.PrintColdStart(os.Stdout, rep); err != nil {
		return err
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// runLoad runs the open-loop load experiment, printing its phase tables and
// optionally storing the structured report (the checked-in BENCH_load.json
// is produced this way, with -loadprofile).
func runLoad(jsonPath string, scale, loadSec float64, ratesCSV string, profile bool, admission string) error {
	opts := harness.LoadOptions{Profile: profile, Admission: admission}
	if loadSec > 0 {
		opts.PhaseDuration = time.Duration(loadSec * float64(time.Second))
	}
	if ratesCSV != "" {
		for _, f := range strings.Split(ratesCSV, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return fmt.Errorf("-loadrates: %w", err)
			}
			opts.Rates = append(opts.Rates, v)
		}
	}
	rep, err := harness.LoadBench(scale, opts)
	if err != nil {
		return err
	}
	if err := harness.PrintLoad(os.Stdout, rep); err != nil {
		return err
	}
	if jsonPath == "" {
		return nil
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(b, '\n'), 0o644)
}

// runOnlineTrace prints the per-stage Mine breakdown (-trace).
func runOnlineTrace(scale float64) error {
	rep, err := harness.OnlineTrace(scale)
	if err != nil {
		return err
	}
	fmt.Println()
	return harness.PrintOnlineTrace(os.Stdout, rep)
}

// runTrajJSON runs the trajectory experiment once, printing its table and
// storing the measurements as a structured report (the checked-in
// BENCH_trajectory.json is produced this way).
func runTrajJSON(path string, scale float64) error {
	rep, err := harness.TrajBench(scale)
	if err != nil {
		return err
	}
	if err := harness.PrintTraj(os.Stdout, rep); err != nil {
		return err
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
