// Command tara is the interactive temporal association explorer: it loads or
// generates an evolving transaction database, builds the TARA knowledge base
// (TAR Archive + EPS index), and answers exploration queries — interactively
// from stdin, or one-shot via -q.
//
// Usage:
//
//	tara -gen retail -tx 20000 -batches 10 -supp 0.005 -conf 0.1
//	tara -load transactions.tsv -batches 5 -q "mine w=0 supp=0.01 conf=0.2"
//	tara serve -kb retail.kb -addr 127.0.0.1:8775   (runs the tarad daemon)
//
// Query syntax (see package tara/internal/query):
//
//	mine      w=0 supp=0.01 conf=0.2
//	traj      w=3 supp=0.01 conf=0.2 in=0,1,2
//	compare   w=0,1,2,3 a=0.01,0.2 b=0.05,0.3
//	recommend w=0 supp=0.01 conf=0.2
//	rollup    from=0 to=3 supp=0.01 conf=0.2
//	drill     rule=12 from=0 to=3
//	about     w=0 supp=0.01 conf=0.2 items=milk,bread
//	rank      from=0 to=3 supp=0.01 conf=0.2 by=stability k=10
//	periodic  from=0 to=8 supp=0.01 conf=0.2 period=7 k=10
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"tara/internal/gen"
	"tara/internal/mining"
	"tara/internal/query"
	"tara/internal/server"
	"tara/internal/tara"
	"tara/internal/txdb"
)

func main() {
	// "tara serve ..." runs the query-serving daemon (same as cmd/tarad).
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := server.Run(os.Args[2:], os.Stderr); err != nil {
			fatal(err)
		}
		return
	}
	var (
		load     = flag.String("load", "", "load transactions from a TSV file (timestamp<TAB>item item ...)")
		fimi     = flag.String("fimi", "", "load transactions from a FIMI-format file (e.g. the real retail.dat)")
		maxTx    = flag.Int("maxtx", 0, "cap transactions read from -fimi (0 = all)")
		generate = flag.String("gen", "retail", "generate a dataset: retail, quest or webdocs (ignored with -load)")
		tx       = flag.Int("tx", 20000, "transactions to generate")
		items    = flag.Int("items", 2000, "item vocabulary size for generation")
		avgLen   = flag.Int("avglen", 10, "average transaction length for generation")
		seed     = flag.Int64("seed", 1, "generator seed")
		batches  = flag.Int("batches", 10, "number of equal-sized windows")
		winSize  = flag.Int64("window", 0, "time-based window size (overrides -batches when > 0)")
		genSupp  = flag.Float64("supp", 0.005, "generation minimum support (Table 4)")
		genConf  = flag.Float64("conf", 0.1, "generation minimum confidence (Table 4)")
		maxLen   = flag.Int("maxlen", 4, "maximum itemset length")
		miner    = flag.String("miner", "eclat", "mining algorithm: apriori, eclat, fpgrowth, hmine")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "windows preprocessed concurrently during build (0 or 1 = serial; output is byte-identical either way)")
		oneshot  = flag.String("q", "", "run a single query and exit")
		kbFile   = flag.String("kb", "", "load a previously saved knowledge base instead of building")
		mmapOn   = flag.Bool("mmap", false, "memory-map the -kb file (mapped container format) instead of deserializing it into the heap")
		saveFile = flag.String("save", "", "save the knowledge base to this file after building")
		saveFmt  = flag.String("saveformat", "legacy", "on-disk format for -save: legacy (streaming) or mapped (mmap-ready container)")
	)
	flag.Parse()

	var fw *tara.Framework
	start := time.Now()
	if *kbFile != "" {
		var err error
		if *mmapOn {
			fw, err = tara.Open(*kbFile)
		} else {
			var f *os.File
			if f, err = os.Open(*kbFile); err != nil {
				fatal(err)
			}
			fw, err = tara.Load(f)
			f.Close()
		}
		if err != nil {
			fatal(err)
		}
		defer fw.Close()
		fmt.Fprintf(os.Stderr, "loaded knowledge base %s (%s) in %v\n", *kbFile, fw.LoadMode(), time.Since(start).Round(time.Millisecond))
	} else {
		db, err := loadOrGenerate(*load, *fimi, *maxTx, *generate, *tx, *items, *avgLen, *seed)
		if err != nil {
			fatal(err)
		}
		m, err := mining.ByName(*miner)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "building TARA knowledge base over %d transactions...\n", db.Len())
		fw, err = tara.Build(db, *winSize, *batches, tara.Config{
			GenMinSupport: *genSupp,
			GenMinConf:    *genConf,
			MaxItemsetLen: *maxLen,
			Miner:         m,
			ContentIndex:  true,
			Parallelism:   *parallel,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, fw.BuildReport())
	}
	fmt.Fprintf(os.Stderr, "ready: %d windows, %d rules, archive %d bytes (in %v)\n",
		fw.Windows(), fw.RuleDict().Len(), fw.Archive().SizeBytes(), time.Since(start).Round(time.Millisecond))
	if *saveFile != "" {
		f, err := os.Create(*saveFile)
		if err != nil {
			fatal(err)
		}
		switch *saveFmt {
		case "legacy":
			err = fw.Save(f)
		case "mapped":
			err = fw.SaveMapped(f)
		default:
			err = fmt.Errorf("unknown -saveformat %q (want legacy or mapped)", *saveFmt)
		}
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "saved knowledge base to %s (%s format)\n", *saveFile, *saveFmt)
	}

	if *oneshot != "" {
		if err := runQuery(fw, *oneshot); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Fprintln(os.Stderr, `enter queries ("help" for syntax, "stats" for a summary, "quit" to exit):`)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Fprint(os.Stderr, "tara> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch line {
		case "":
			continue
		case "quit", "exit":
			return
		case "help":
			printHelp()
			continue
		case "stats":
			printStats(fw)
			continue
		}
		if err := runQuery(fw, line); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
}

func loadOrGenerate(load, fimi string, maxTx int, generator string, tx, items, avgLen int, seed int64) (*txdb.DB, error) {
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return txdb.Read(f)
	}
	if fimi != "" {
		f, err := os.Open(fimi)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return txdb.ReadFIMI(f, maxTx)
	}
	switch generator {
	case "retail":
		return gen.Retail(gen.RetailParams{Transactions: tx, NumItems: items, AvgLen: avgLen, Seed: seed})
	case "quest":
		return gen.Quest(gen.QuestParams{Transactions: tx, AvgTransLen: avgLen, NumItems: items, Seed: seed})
	case "webdocs":
		return gen.Webdocs(gen.WebdocsParams{Transactions: tx, NumItems: items, AvgLen: avgLen, Seed: seed})
	}
	return nil, fmt.Errorf("unknown generator %q (want retail, quest or webdocs)", generator)
}

func runQuery(fw *tara.Framework, line string) error {
	q, err := query.Parse(line)
	if err != nil {
		return err
	}
	return query.Execute(os.Stdout, fw, q)
}

func printStats(fw *tara.Framework) {
	s := fw.Summarize()
	fmt.Printf("knowledge base: %d windows, %d rules, %d items\n", s.Windows, s.Rules, s.Items)
	fmt.Printf("archive: %d entries, %d bytes (%.1fx compression)\n",
		s.ArchiveEntries, s.ArchiveBytes, float64(s.UncompressedByte)/float64(s.ArchiveBytes))
	for _, w := range s.PerWindow {
		fmt.Printf("  window %-3d %v  n=%-7d rules=%-7d locations=%d\n",
			w.Window, w.Period, w.N, w.Rules, w.Locations)
	}
	if ts := fw.Timings(); len(ts) > 0 {
		fmt.Println("build telemetry (per window):")
		for _, t := range ts {
			fmt.Printf("  window %-3d mine=%-10v rulegen=%-10v archive=%-10v index=%-10v commit=%-10v wait=%-10v grid=%dx%d archiveB=%d frequent=[%s]",
				t.Window,
				t.Mine.Round(time.Microsecond), t.RuleGen.Round(time.Microsecond),
				t.ArchiveTime.Round(time.Microsecond), t.IndexTime.Round(time.Microsecond),
				t.Commit.Round(time.Microsecond), t.QueueWait.Round(time.Microsecond),
				t.SuppCuts, t.ConfCuts, t.ArchiveBytes, tara.PerLevelString(t.LevelFrequent))
			if t.LevelCandidates != nil {
				fmt.Printf(" candidates=[%s]", tara.PerLevelString(t.LevelCandidates))
			}
			fmt.Println()
		}
	}
	if ctr := fw.BuildCounters(); ctr["build_windows"] > 0 {
		fmt.Printf("build counters: windows=%d rules=%d mine=%vms rulegen=%vms eps=%vms archive=%vms commit=%vms queue-wait=%vms\n",
			ctr["build_windows"], ctr["build_rules"],
			ctr["build_mine_ns"]/1e6, ctr["build_rulegen_ns"]/1e6,
			ctr["build_eps_ns"]/1e6, ctr["build_archive_ns"]/1e6,
			ctr["build_commit_ns"]/1e6, ctr["build_queue_wait_ns"]/1e6)
	}
}

func printHelp() {
	fmt.Fprintln(os.Stderr, `queries:
  mine      w=0 supp=0.01 conf=0.2
  traj      w=3 supp=0.01 conf=0.2 in=0,1,2
  compare   w=0,1,2,3 a=0.01,0.2 b=0.05,0.3
  recommend w=0 supp=0.01 conf=0.2
  rollup    from=0 to=3 supp=0.01 conf=0.2
  drill     rule=12 from=0 to=3
  about     w=0 supp=0.01 conf=0.2 items=milk,bread
  rank      from=0 to=3 supp=0.01 conf=0.2 by=stability k=10
  periodic  from=0 to=8 supp=0.01 conf=0.2 period=7 k=10
  plot      w=0 [supp=0.01 conf=0.2]
  export    w=0 supp=0.01 conf=0.2 file=rules.csv [format=csv|json]`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tara:", err)
	os.Exit(1)
}
