// Command maras runs the MARAS multi-drug adverse reaction signaling
// pipeline on a synthetic FAERS quarter: it generates reports with planted
// drug-drug interactions, mines and ranks MDAR signals by contrast, and
// reports precision against the planted ground truth alongside the
// confidence and reporting-ratio baselines.
//
// Usage:
//
//	maras -reports 6000 -drugs 80 -adrs 60 -ddis 15 -topk 20
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"tara/internal/gen"
	"tara/internal/maras"
)

func main() {
	var (
		reports  = flag.Int("reports", 6000, "ADR reports to generate")
		drugs    = flag.Int("drugs", 80, "number of distinct drugs")
		adrs     = flag.Int("adrs", 60, "number of distinct ADRs")
		ddis     = flag.Int("ddis", 15, "planted drug-drug interactions")
		seed     = flag.Int64("seed", 20153, "generator seed")
		topK     = flag.Int("topk", 20, "signals to print")
		minSupp  = flag.Uint("minsupport", 8, "minimum joint report count for a signal")
		theta    = flag.Float64("theta", 0.75, "contrast CV-penalty weight θ")
		baseline = flag.Bool("baselines", true, "also print confidence/RR baseline rankings")
		jsonOut  = flag.String("json", "", "also write the ranked signals as JSON to this file")
	)
	flag.Parse()

	ds, truth, err := gen.FAERS(gen.FAERSParams{
		Reports:  *reports,
		NumDrugs: *drugs,
		NumADRs:  *adrs,
		NumDDIs:  *ddis,
		Seed:     *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("generated %d reports, %d drugs, %d ADRs, %d planted DDIs\n",
		ds.Len(), ds.Drugs.Len(), ds.ADRs.Len(), len(truth))

	start := time.Now()
	signals, err := maras.Mine(ds, maras.Params{
		MinSupportCount: uint32(*minSupp),
		Theta:           *theta,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mined %d non-spurious multi-drug signals in %v\n\n", len(signals), time.Since(start).Round(time.Millisecond))

	truthKeys := map[string]bool{}
	for _, d := range truth {
		truthKeys[d.Key()] = true
	}
	isHit := func(s maras.Signal) bool {
		for _, k := range gen.SignalKeys(ds, s) {
			if truthKeys[k] {
				return true
			}
		}
		return false
	}

	fmt.Printf("top %d MDAR signals by contrast:\n", *topK)
	hits := 0
	for i, s := range maras.TopK(signals, *topK) {
		mark := ""
		if isHit(s) {
			mark = " [TRUE DDI]"
			hits++
		}
		fmt.Printf("%3d. %-55s contrast=%.3f conf=%.2f n=%d %s%s\n",
			i+1, s.Assoc.Format(ds), s.Contrast, s.Confidence, s.CountXY, s.Kind, mark)
	}
	fmt.Printf("\nprecision@%d = %.3f (%d/%d hits)\n", *topK, float64(hits)/float64(*topK), hits, *topK)

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, ds, maras.TopK(signals, *topK)); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}

	if *baseline {
		for _, b := range []struct {
			name string
			m    maras.BaselineMeasure
		}{{"confidence", maras.ByConfidence}, {"reporting ratio", maras.ByReportingRatio}} {
			ranked, err := maras.RankBaseline(ds, b.m, uint32(*minSupp), 5, *topK)
			if err != nil {
				fatal(err)
			}
			bHits := 0
			for _, s := range ranked {
				if len(s.Assoc.Drugs) == 2 {
					a := ds.Drugs.Name(s.Assoc.Drugs[0])
					bn := ds.Drugs.Name(s.Assoc.Drugs[1])
					if bn < a {
						a, bn = bn, a
					}
					for _, adr := range s.Assoc.ADRs {
						if truthKeys[a+"+"+bn+"=>"+ds.ADRs.Name(adr)] {
							bHits++
							break
						}
					}
				}
			}
			fmt.Printf("baseline %-16s precision@%d = %.3f\n", b.name+":", *topK, float64(bHits)/float64(*topK))
		}
	}
}

// jsonSignal is the exported JSON shape of one signal.
type jsonSignal struct {
	Drugs       []string  `json:"drugs"`
	ADRs        []string  `json:"adrs"`
	Kind        string    `json:"kind"`
	Reports     uint32    `json:"reports"`
	Confidence  float64   `json:"confidence"`
	Lift        float64   `json:"lift"`
	Contrast    float64   `json:"contrast"`
	ContrastMax float64   `json:"contrastMax"`
	Context     []float64 `json:"contextConfidences"`
}

func writeJSON(path string, ds *maras.Dataset, signals []maras.Signal) error {
	out := make([]jsonSignal, len(signals))
	for i, s := range signals {
		js := jsonSignal{
			Kind:        s.Kind.String(),
			Reports:     s.CountXY,
			Confidence:  s.Confidence,
			Lift:        s.Lift,
			Contrast:    s.Contrast,
			ContrastMax: s.ContrastMax,
		}
		for _, d := range s.Assoc.Drugs {
			js.Drugs = append(js.Drugs, ds.Drugs.Name(d))
		}
		for _, a := range s.Assoc.ADRs {
			js.ADRs = append(js.ADRs, ds.ADRs.Name(a))
		}
		for _, c := range s.CAC {
			js.Context = append(js.Context, c.Confidence)
		}
		out[i] = js
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "maras:", err)
	os.Exit(1)
}
