// Retail exploration: the workload that motivates the paper's introduction.
// A season of synthetic store transactions is partitioned into weekly
// windows; the analyst then explores how product associations evolve —
// trajectories, ruleset comparison between candidate parameter settings,
// stable-region recommendations, and evolution-measure rankings.
package main

import (
	"fmt"
	"log"

	"tara/internal/gen"
	"tara/internal/tara"
)

func main() {
	db, err := gen.Retail(gen.RetailParams{
		Transactions: 30000,
		NumItems:     1500,
		AvgLen:       9,
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}

	const weeks = 12
	fw, err := tara.Build(db, 0, weeks, tara.Config{
		GenMinSupport: 0.005,
		GenMinConf:    0.1,
		MaxItemsetLen: 3,
		ContentIndex:  true,
		Parallelism:   4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d weeks of %d transactions: %d distinct rules\n\n",
		fw.Windows(), db.Len(), fw.RuleDict().Len())

	// 1. What held last week, and how did it behave the month before?
	last := weeks - 1
	month := []int{last - 3, last - 2, last - 1}
	trajectories, err := fw.RuleTrajectories(last, 0.02, 0.4, month)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q1: %d rules hold last week at (supp>=2%%, conf>=40%%); first three across the month:\n", len(trajectories))
	for _, tr := range trajectories[:min(3, len(trajectories))] {
		fmt.Printf("  %s\n", tr.Rule.Format(fw.ItemDict()))
		for i, w := range tr.Windows {
			if tr.Present[i] {
				fmt.Printf("    week %d: supp=%.4f conf=%.3f\n", w, tr.Stats[i].Support(), tr.Stats[i].Confidence())
			} else {
				fmt.Printf("    week %d: below generation thresholds\n", w)
			}
		}
	}

	// 2. Would tightening the thresholds lose anything important?
	diffs, err := fw.Compare([]int{last - 1, last}, 0.02, 0.4, 0.04, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nQ2: tightening (2%,40%) -> (4%,50%) would drop:")
	for _, d := range diffs {
		fmt.Printf("  week %d: %d rules (none gained, by dominance)\n", d.Window, len(d.OnlyA))
	}

	// 3. How far can the analyst wiggle the knobs without changing the answer?
	region, err := fw.Recommend(last, 0.02, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ3: %v\n", region)

	// 4. The most stable and the most volatile associations of the season.
	stable, err := fw.RankEvolution(0, last, 0.02, 0.4, tara.ByStability, 0.005, 3)
	if err != nil {
		log.Fatal(err)
	}
	volatile, err := fw.RankEvolution(0, last, 0.02, 0.4, tara.ByVolatility, 0.005, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmost stable rules of the season:")
	for _, s := range stable {
		fmt.Printf("  %-40s stability=%.2f coverage=%.2f\n", s.Rule.Format(fw.ItemDict()), s.Stability, s.Coverage)
	}
	fmt.Println("most volatile rules of the season:")
	for _, s := range volatile {
		fmt.Printf("  %-40s stddev=%.4f coverage=%.2f\n", s.Rule.Format(fw.ItemDict()), s.StdDev, s.Coverage)
	}

	// 5. Roll-up: the whole season at coarse granularity, with error bounds.
	season, err := fw.MineRollUp(0, last, 0.02, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ4: %d rules hold over the whole season; worst support error bound %.5f\n",
		len(season), maxBound(season))
}

func maxBound(rs []tara.RollUpRule) float64 {
	var m float64
	for _, r := range rs {
		if r.MaxSupportError > m {
			m = r.MaxSupportError
		}
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
