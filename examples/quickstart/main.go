// Quickstart: build a TARA knowledge base over a small hand-written evolving
// dataset and run the three fundamental exploration operations — mining,
// parameter recommendation, and a rule trajectory.
package main

import (
	"fmt"
	"log"
	"os"

	"tara/internal/query"
	"tara/internal/tara"
	"tara/internal/txdb"
)

func main() {
	// An evolving retail log: two "days" (time 0-9 and 10-19). The
	// milk+bread habit holds all along; beer+chips appears on day two.
	db := txdb.NewDB()
	day1 := [][]string{
		{"milk", "bread"}, {"milk", "bread", "eggs"}, {"milk", "bread"},
		{"tea", "sugar"}, {"milk", "bread", "tea"}, {"eggs"},
		{"milk", "bread"}, {"tea", "sugar", "milk"}, {"bread"}, {"milk"},
	}
	for i, tx := range day1 {
		db.Add(int64(i), tx...)
	}
	day2 := [][]string{
		{"beer", "chips"}, {"milk", "bread"}, {"beer", "chips", "salsa"},
		{"milk", "bread"}, {"beer", "chips"}, {"tea", "sugar"},
		{"beer", "chips"}, {"milk", "bread", "beer"}, {"chips"}, {"beer"},
	}
	for i, tx := range day2 {
		db.Add(int64(10+i), tx...)
	}

	// Offline phase: one window per day, pregenerating every rule with
	// support >= 10% and confidence >= 10%.
	fw, err := tara.Build(db, 10, 0, tara.Config{
		GenMinSupport: 0.1,
		GenMinConf:    0.1,
		MaxItemsetLen: 3,
		ContentIndex:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("knowledge base: %d windows, %d rules\n\n", fw.Windows(), fw.RuleDict().Len())

	// Online phase — all answers come from the knowledge base.
	for _, line := range []string{
		"mine w=1 supp=0.3 conf=0.7",
		"recommend w=1 supp=0.3 conf=0.7",
		"traj w=1 supp=0.3 conf=0.7 in=0",
		"about w=1 supp=0.1 conf=0.5 items=beer",
	} {
		fmt.Println("query:", line)
		q, err := query.Parse(line)
		if err != nil {
			log.Fatal(err)
		}
		if err := query.Execute(os.Stdout, fw, q); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
