// Pharmacovigilance: the paper's motivating application. A synthetic
// quarter of FAERS-style adverse drug reaction reports is mined with MARAS;
// the contrast measure surfaces the planted drug-drug interactions that the
// plain confidence and reporting-ratio rankings bury, and each signal's
// contextual association cluster explains why.
package main

import (
	"fmt"
	"log"

	"tara/internal/gen"
	"tara/internal/maras"
)

func main() {
	ds, truth, err := gen.FAERS(gen.FAERSParams{
		Reports:  8000,
		NumDrugs: 100,
		NumADRs:  70,
		NumDDIs:  12,
		Seed:     2014,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one synthetic FAERS quarter: %d reports, %d drugs, %d ADRs, %d planted interactions\n\n",
		ds.Len(), ds.Drugs.Len(), ds.ADRs.Len(), len(truth))

	signals, err := maras.Mine(ds, maras.Params{MinSupportCount: 8})
	if err != nil {
		log.Fatal(err)
	}
	truthKeys := map[string]bool{}
	for _, d := range truth {
		truthKeys[d.Key()] = true
	}

	fmt.Println("top 5 MDAR signals by contrast, with their contextual association clusters:")
	for i, s := range maras.TopK(signals, 5) {
		hit := ""
		for _, k := range gen.SignalKeys(ds, s) {
			if truthKeys[k] {
				hit = " <- planted interaction"
			}
		}
		fmt.Printf("\n%d. %s%s\n", i+1, s.Assoc.Format(ds), hit)
		fmt.Printf("   confidence=%.2f lift=%.2f reports=%d support-kind=%s\n",
			s.Confidence, s.Lift, s.CountXY, s.Kind)
		fmt.Printf("   contrast=%.3f (max=%.3f avg=%.3f cv=%.3f)\n",
			s.Contrast, s.ContrastMax, s.ContrastAvg, s.ContrastCV)
		fmt.Println("   contextual associations (drug subsets => same ADRs):")
		for _, c := range s.CAC {
			names := make([]string, len(c.Drugs))
			for j, d := range c.Drugs {
				names[j] = ds.Drugs.Name(d)
			}
			fmt.Printf("     %-30v conf=%.2f\n", names, c.Confidence)
		}
	}

	// How do the paper's baselines fare on the same data?
	fmt.Println("\nranking comparison (precision@10 against planted interactions):")
	fmt.Printf("  MARAS contrast:   %.2f\n", precisionTop10(ds, truthKeys, signals))
	for _, b := range []struct {
		name string
		m    maras.BaselineMeasure
	}{{"confidence", maras.ByConfidence}, {"reporting ratio", maras.ByReportingRatio}} {
		ranked, err := maras.RankBaseline(ds, b.m, 8, 5, 10)
		if err != nil {
			log.Fatal(err)
		}
		hits := 0
		for _, s := range ranked {
			if len(s.Assoc.Drugs) != 2 {
				continue
			}
			a := ds.Drugs.Name(s.Assoc.Drugs[0])
			bn := ds.Drugs.Name(s.Assoc.Drugs[1])
			if bn < a {
				a, bn = bn, a
			}
			for _, adr := range s.Assoc.ADRs {
				if truthKeys[a+"+"+bn+"=>"+ds.ADRs.Name(adr)] {
					hits++
					break
				}
			}
		}
		fmt.Printf("  %-17s %.2f\n", b.name+":", float64(hits)/10)
	}
}

func precisionTop10(ds *maras.Dataset, truthKeys map[string]bool, signals []maras.Signal) float64 {
	hits := 0
	for _, s := range maras.TopK(signals, 10) {
		for _, k := range gen.SignalKeys(ds, s) {
			if truthKeys[k] {
				hits++
				break
			}
		}
	}
	return float64(hits) / 10
}
