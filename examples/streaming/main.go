// Streaming: incremental knowledge-base construction (the iPARAS direction).
// Data batches arrive one at a time; each is absorbed with AppendWindow —
// history is never reprocessed — and the explorer stays queryable between
// arrivals, tracking how a watched rule's trajectory evolves.
package main

import (
	"fmt"
	"log"
	"time"

	"tara/internal/gen"
	"tara/internal/tara"
)

func main() {
	// The full "stream", pre-generated; batches arrive one per iteration.
	db, err := gen.Retail(gen.RetailParams{
		Transactions: 16000,
		NumItems:     800,
		AvgLen:       8,
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}
	const batches = 8
	windows, err := db.PartitionByCount(batches)
	if err != nil {
		log.Fatal(err)
	}

	fw := tara.New(db.Dict, tara.Config{
		GenMinSupport: 0.01,
		GenMinConf:    0.1,
		MaxItemsetLen: 3,
	})

	for _, w := range windows {
		start := time.Now()
		if err := fw.AppendWindow(w); err != nil {
			log.Fatal(err)
		}
		absorb := time.Since(start)

		latest := fw.Windows() - 1
		views, err := fw.Mine(latest, 0.02, 0.4)
		if err != nil {
			log.Fatal(err)
		}
		region, err := fw.Recommend(latest, 0.02, 0.4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %d absorbed in %8v: %4d rules at (2%%, 40%%), stable region supp(%.4f,%.4f]\n",
			latest, absorb.Round(time.Microsecond), len(views), region.LowSupp, region.HighSupp)

		// Watch the first rule that ever qualified.
		if latest >= 2 && len(views) > 0 {
			id := views[0].ID
			tr, err := fw.Trajectory(id, 0, latest)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("         watched %-30s coverage=%.2f stability=%.2f\n",
				views[0].Rule.Format(fw.ItemDict()), tr.Coverage(), tr.Stability(0.01))
		}
	}

	// After the stream: a season-wide roll-up without touching raw data.
	rolled, err := fw.MineRollUp(0, fw.Windows()-1, 0.02, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nroll-up over all %d batches: %d rules hold stream-wide\n", fw.Windows(), len(rolled))
}
