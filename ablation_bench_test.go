package tara_bench

import (
	"fmt"
	"testing"

	"tara/internal/mining"
	"tara/internal/rules"
)

// Ablation benchmarks for the design choices called out in DESIGN.md:
// the EPS quadrant walk vs a naive linear scan over parametric locations,
// the delta-varint TAR Archive encoding vs naive fixed-width storage, and
// the choice of frequent-itemset miner inside the Association Generator.

// BenchmarkAblationEPSCollection compares the indexed quadrant walk with a
// linear scan over all locations, at a selective and an unselective request.
func BenchmarkAblationEPSCollection(b *testing.B) {
	sys := systemsFor(b, "retail")
	slice, err := sys.TARA.Index().Slice(len(sys.Windows) - 1)
	if err != nil {
		b.Fatal(err)
	}
	linearScan := func(minSupp, minConf float64) []rules.ID {
		var out []rules.ID
		for _, l := range slice.Locations() {
			if l.Supp >= minSupp && l.Conf >= minConf {
				out = append(out, l.Rules...)
			}
		}
		return out
	}
	for _, q := range []struct {
		name       string
		supp, conf float64
	}{
		{"selective", 0.05, 0.6},
		{"broad", 0.005, 0.1},
	} {
		b.Run(q.name+"/quadrant-walk", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = slice.Rules(q.supp, q.conf)
			}
		})
		b.Run(q.name+"/linear-scan", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = linearScan(q.supp, q.conf)
			}
		})
	}
}

// BenchmarkAblationArchiveDecode measures trajectory decoding from the
// compressed archive and reports the compression ratio against naive
// fixed-width storage — the space/time trade the encoding makes.
func BenchmarkAblationArchiveDecode(b *testing.B) {
	sys := systemsFor(b, "retail")
	arch := sys.TARA.Archive()
	ids := arch.Rules()
	b.Run("series-decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = arch.Series(ids[i%len(ids)])
		}
		b.ReportMetric(float64(arch.UncompressedBytes())/float64(arch.SizeBytes()), "compression-x")
	})
	b.Run("rollup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := arch.RollUp(ids[i%len(ids)], 0, arch.Windows()-1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationMinerChoice runs each frequent-itemset miner over one
// window of the retail workload at the generation threshold — the offline
// cost the Association Generator's default (Eclat) was picked by.
func BenchmarkAblationMinerChoice(b *testing.B) {
	sys := systemsFor(b, "retail")
	window := sys.Windows[len(sys.Windows)-1]
	minCount := mining.MinCountFor(sys.Spec.GenSupp, len(window.Tx))
	for _, m := range mining.Miners() {
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := m.Mine(window.Tx, mining.Params{MinCount: minCount, MaxLen: sys.Spec.MaxLen})
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() == 0 {
					b.Fatal("no itemsets")
				}
			}
		})
	}
}

// BenchmarkAblationNDIndex compares the three-measure (support, confidence,
// lift) request answered by the n-dimensional parameter-space slice against
// the 2D quadrant walk with a lift post-filter.
func BenchmarkAblationNDIndex(b *testing.B) {
	sys := systemsFor(b, "retail")
	last := len(sys.Windows) - 1
	spec := sys.Spec
	for _, q := range []struct {
		name             string
		supp, conf, lift float64
	}{
		{"selective", 4 * spec.GenSupp, 0.6, 2},
		{"broad", spec.GenSupp, spec.GenConf, 1},
	} {
		b.Run(q.name+"/nd-slice", func(b *testing.B) {
			// Warm the lazy cache outside the measurement.
			if _, err := sys.TARA.MineND(last, q.supp, q.conf, q.lift); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.TARA.MineND(last, q.supp, q.conf, q.lift); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.name+"/2d-postfilter", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sys.TARA.MineFiltered(last, q.supp, q.conf, q.lift); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationContentIndex compares plain collection with the TARA-S
// merged-content-index collection on the same slice, isolating the merge
// overhead the paper reports for TARA-S.
func BenchmarkAblationContentIndex(b *testing.B) {
	sys := systemsFor(b, "retail")
	slice, err := sys.TARA.Index().Slice(len(sys.Windows) - 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, q := range []struct {
		name       string
		supp, conf float64
	}{
		{"selective", 0.05, 0.6},
		{"broad", 0.005, 0.1},
	} {
		b.Run(fmt.Sprintf("%s/plain", q.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = slice.Rules(q.supp, q.conf)
			}
		})
		b.Run(fmt.Sprintf("%s/merged", q.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := slice.RulesMerged(q.supp, q.conf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
