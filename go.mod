module tara

go 1.22
